package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// PreferentialAttachment returns a Barabási–Albert-style graph: vertices
// arrive one at a time and attach m edges to earlier vertices sampled
// proportionally to their current degree. The result has a heavy-tailed
// degree distribution with Δ ≫ m while the arboricity stays ≤ m (each
// vertex contributes m edges to earlier vertices: orienting new→old gives
// out-degree ≤ m, i.e. degeneracy ≤ m) — a natural "realistic" family for
// the Section 5 regime a ≪ Δ.
func PreferentialAttachment(n, m int, seed int64) (*graph.Graph, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("gen: preferential attachment needs 1 ≤ m < n, got m=%d n=%d", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	s := newEdgeSet(n)
	// Repeated-endpoint list: sampling a uniform element is sampling
	// proportionally to degree.
	targets := make([]int, 0, 2*n*m)
	// Seed clique on the first m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			s.add(u, v)
			targets = append(targets, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		added := 0
		for attempts := 0; added < m && attempts < 50*m; attempts++ {
			u := targets[rng.Intn(len(targets))]
			if s.add(u, v) {
				targets = append(targets, u, v)
				added++
			}
		}
		// Degenerate fallback (tiny graphs): attach to arbitrary earlier
		// vertices to keep the degree invariant.
		for u := 0; added < m && u < v; u++ {
			if s.add(u, v) {
				targets = append(targets, u, v)
				added++
			}
		}
	}
	return s.build(), nil
}

// RegularBipartite returns a d-regular bipartite graph on two sides of size
// n (union of d random perfect matchings, deduplicated — so "near regular"
// for d close to n). König's theorem makes these the canonical instances
// where the optimal edge coloring equals Δ exactly.
func RegularBipartite(n, d int, seed int64) (*graph.Graph, error) {
	if d < 1 || d > n {
		return nil, fmt.Errorf("gen: regular bipartite needs 1 ≤ d ≤ n, got d=%d n=%d", d, n)
	}
	rng := rand.New(rand.NewSource(seed))
	s := newEdgeSet(2 * n)
	for layer := 0; layer < d; layer++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			s.add(i, n+perm[i])
		}
	}
	return s.build(), nil
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant vertices attached to each spine vertex. Δ = legs+2 while the
// arboricity is 1 — the extreme of the a ≪ Δ regime.
func Caterpillar(spine, legs int) *graph.Graph {
	n := spine + spine*legs
	b := graph.NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, next)
			next++
		}
	}
	return b.MustBuild()
}
