package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(500, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	// Every vertex after the seed clique has degree ≥ m.
	for v := 4; v < g.N(); v++ {
		if g.Degree(v) < 3 {
			t.Fatalf("vertex %d degree %d < m", v, g.Degree(v))
		}
	}
	// Heavy tail: Δ well above m.
	if g.MaxDegree() < 3*3 {
		t.Fatalf("max degree %d suspiciously small", g.MaxDegree())
	}
	// Arboricity bounded by m (orient new→old).
	if a := graph.ArboricityUpperBound(g); a > 3 {
		t.Fatalf("degeneracy %d exceeds m", a)
	}
	// Deterministic.
	g2, err := PreferentialAttachment(500, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !equalEdges(g, g2) {
		t.Fatal("not deterministic")
	}
}

func TestPreferentialAttachmentErrors(t *testing.T) {
	if _, err := PreferentialAttachment(3, 3, 1); err == nil {
		t.Fatal("expected n>m error")
	}
	if _, err := PreferentialAttachment(10, 0, 1); err == nil {
		t.Fatal("expected m≥1 error")
	}
}

func TestRegularBipartite(t *testing.T) {
	g, err := RegularBipartite(50, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n=%d", g.N())
	}
	if g.MaxDegree() > 5 {
		t.Fatalf("degree %d exceeds d", g.MaxDegree())
	}
	// Bipartite: no edge within a side.
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if (u < 50) == (v < 50) {
			t.Fatalf("edge {%d,%d} within one side", u, v)
		}
	}
	if _, err := RegularBipartite(5, 6, 1); err == nil {
		t.Fatal("expected d≤n error")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 7)
	if g.N() != 10+70 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() != 9+70 {
		t.Fatalf("m=%d", g.M())
	}
	if g.MaxDegree() != 9 { // interior spine vertex: 2 spine + 7 legs
		t.Fatalf("Δ=%d, want 9", g.MaxDegree())
	}
	if !graph.IsConnected(g) {
		t.Fatal("caterpillar must be connected")
	}
	if a := graph.ArboricityUpperBound(g); a != 1 {
		t.Fatalf("tree degeneracy %d", a)
	}
}
