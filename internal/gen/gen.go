// Package gen provides the deterministic synthetic workload generators used
// by the experiments. Each generator takes an explicit seed; the same seed
// always yields the same graph, so every benchmark in this repository is
// reproducible bit-for-bit.
//
// The families are chosen to hit the hypotheses of the paper's theorems:
//
//   - GNP / NearRegular: general graphs for Table 1 (edge-coloring sweeps).
//   - ForestUnion(+hub): arboricity ≤ a by construction with Δ ≫ a, the
//     regime of Section 5 (a = o(Δ)).
//   - Grid / Tree: constant-arboricity graphs (planar family stand-ins).
//   - Geometric: unit-disk-style sensor network topologies (the link
//     scheduling motivation of §1.2).
//   - UniformHypergraph: line graphs of c-uniform hypergraphs are the
//     canonical diversity-c family for Table 2.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// edgeSet deduplicates undirected edges during generation.
type edgeSet struct {
	b    *graph.Builder
	seen map[int64]bool
	n    int
	m    int
}

func newEdgeSet(n int) *edgeSet {
	return &edgeSet{b: graph.NewBuilder(n), seen: make(map[int64]bool), n: n}
}

// add inserts {u,v} if new, reporting whether it was inserted.
func (s *edgeSet) add(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := int64(u)<<32 | int64(v)
	if s.seen[key] {
		return false
	}
	s.seen[key] = true
	s.b.AddEdge(u, v)
	s.m++
	return true
}

func (s *edgeSet) build() *graph.Graph { return s.b.MustBuild() }

// GNP returns an Erdős–Rényi G(n, p) sample.
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := newEdgeSet(n)
	if p >= 1 {
		return graph.Complete(n)
	}
	if p > 0 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					s.add(u, v)
				}
			}
		}
	}
	return s.build()
}

// NearRegular returns a graph on n vertices in which every vertex has degree
// close to d (within d of it, typically equal). It is the union of ⌊d/2⌋
// random Hamiltonian cycles plus, for odd d, one random perfect matching.
// Duplicate edges between layers are dropped, which is why the result is
// "near" regular rather than exactly regular; for n ≫ d the deficit is tiny.
func NearRegular(n, d int, seed int64) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: NearRegular needs 0 ≤ d < n, got d=%d n=%d", d, n)
	}
	rng := rand.New(rand.NewSource(seed))
	s := newEdgeSet(n)
	for layer := 0; layer < d/2; layer++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			s.add(perm[i], perm[(i+1)%n])
		}
	}
	if d%2 == 1 {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			s.add(perm[i], perm[i+1])
		}
	}
	return s.build(), nil
}

// ForestUnion returns a graph that is the union of a random recursive trees
// on n vertices, so its arboricity is at most a by construction. Duplicate
// edges across trees are dropped. Typical max degree is Θ(a log n).
func ForestUnion(n, a int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := newEdgeSet(n)
	addRandomTrees(s, rng, n, a)
	return s.build()
}

// ForestUnionHub returns a union of a random trees plus one hub vertex
// (vertex 0) connected to hubDeg distinct vertices. The arboricity is at
// most a+1 (the hub's star is a forest), while Δ ≈ hubDeg, giving the
// a = o(Δ) regime of Section 5 with a controllable gap.
func ForestUnionHub(n, a, hubDeg int, seed int64) (*graph.Graph, error) {
	if hubDeg >= n {
		return nil, fmt.Errorf("gen: hub degree %d must be < n=%d", hubDeg, n)
	}
	rng := rand.New(rand.NewSource(seed))
	s := newEdgeSet(n)
	addRandomTrees(s, rng, n, a)
	// Connect the hub to a random sample of distinct vertices. An edge that
	// already exists from a tree still makes that vertex a hub neighbor, so
	// every sampled vertex counts toward the hub degree.
	perm := rng.Perm(n - 1)
	for i := 0; i < hubDeg; i++ {
		s.add(0, perm[i]+1)
	}
	return s.build(), nil
}

func addRandomTrees(s *edgeSet, rng *rand.Rand, n, a int) {
	for t := 0; t < a; t++ {
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			// Random recursive tree over the shuffled order.
			s.add(perm[i], perm[rng.Intn(i)])
		}
	}
}

// Tree returns a single random recursive tree (arboricity 1).
func Tree(n int, seed int64) *graph.Graph { return ForestUnion(n, 1, seed) }

// Grid returns the rows×cols grid graph (arboricity ≤ 2, planar).
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Geometric returns a random geometric graph: n points uniform in the unit
// square, an edge between points at distance < radius. Built with cell
// hashing in O(n + m) expected time. This models the wireless-network
// topologies motivating edge coloring for link scheduling (§1.2, [19]).
func Geometric(n int, radius float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	cells := make(map[[2]int][]int)
	cellOf := func(i int) [2]int {
		return [2]int{int(xs[i] / radius), int(ys[i] / radius)}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		cells[c] = append(cells[c], i)
	}
	s := newEdgeSet(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range cells[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy < r2 {
						s.add(i, j)
					}
				}
			}
		}
	}
	return s.build()
}

// UniformHypergraph returns a random c-uniform hypergraph with nv vertices
// and ne hyperedges, each a uniformly random c-subset (repeats between
// hyperedges allowed: multi-hyperedges are kept, matching random hypergraph
// models; the line graph construction handles them).
func UniformHypergraph(nv, rank, ne int, seed int64) (*graph.Hypergraph, error) {
	if rank > nv {
		return nil, fmt.Errorf("gen: rank %d exceeds vertex count %d", rank, nv)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([][]int, 0, ne)
	for len(edges) < ne {
		edges = append(edges, rng.Perm(nv)[:rank])
	}
	return graph.NewHypergraph(nv, rank, edges)
}

// BoundedDiversityCliqueGraph builds a graph as a union of nc cliques of
// size cliqueSize over n vertices, where each vertex joins at most maxPerV
// cliques. It returns the graph together with its clique cover. This gives
// direct control of diversity D (= maxPerV) and clique size S for Table 2
// experiments beyond line graphs.
func BoundedDiversityCliqueGraph(n, nc, cliqueSize, maxPerV int, seed int64) (*graph.Graph, [][]int32, error) {
	if cliqueSize > n {
		return nil, nil, fmt.Errorf("gen: clique size %d exceeds n=%d", cliqueSize, n)
	}
	rng := rand.New(rand.NewSource(seed))
	load := make([]int, n)
	s := newEdgeSet(n)
	cliques := make([][]int32, 0, nc)
	for c := 0; c < nc; c++ {
		// Sample cliqueSize vertices with remaining capacity.
		var pool []int
		for v := 0; v < n; v++ {
			if load[v] < maxPerV {
				pool = append(pool, v)
			}
		}
		if len(pool) < cliqueSize {
			break // capacity exhausted; return what we have
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		members := pool[:cliqueSize]
		cl := make([]int32, cliqueSize)
		for i, v := range members {
			load[v]++
			cl[i] = int32(v)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				s.add(members[i], members[j])
			}
		}
		cliques = append(cliques, cl)
	}
	return s.build(), cliques, nil
}
