package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGNPDeterministic(t *testing.T) {
	g1 := GNP(50, 0.2, 42)
	g2 := GNP(50, 0.2, 42)
	if g1.M() != g2.M() {
		t.Fatal("same seed produced different graphs")
	}
	g3 := GNP(50, 0.2, 43)
	if g1.M() == g3.M() && equalEdges(g1, g3) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func equalEdges(a, b *graph.Graph) bool {
	if a.M() != b.M() {
		return false
	}
	for e := 0; e < a.M(); e++ {
		au, av := a.Endpoints(e)
		bu, bv := b.Endpoints(e)
		if au != bu || av != bv {
			return false
		}
	}
	return true
}

func TestGNPExtremes(t *testing.T) {
	if g := GNP(10, 0, 1); g.M() != 0 {
		t.Fatal("p=0 should have no edges")
	}
	if g := GNP(10, 1, 1); g.M() != 45 {
		t.Fatal("p=1 should be complete")
	}
}

func TestGNPDensity(t *testing.T) {
	n := 200
	g := GNP(n, 0.1, 7)
	want := 0.1 * float64(n*(n-1)/2)
	if f := float64(g.M()); f < want*0.8 || f > want*1.2 {
		t.Fatalf("G(200,0.1) has %d edges, expected around %.0f", g.M(), want)
	}
}

func TestNearRegular(t *testing.T) {
	for _, d := range []int{2, 3, 8, 15} {
		g, err := NearRegular(400, d, 11)
		if err != nil {
			t.Fatal(err)
		}
		if g.MaxDegree() > d {
			t.Fatalf("d=%d: max degree %d exceeds target", d, g.MaxDegree())
		}
		// Near-regular: average degree within 15% of d.
		avg := 2 * float64(g.M()) / float64(g.N())
		if avg < float64(d)*0.85 {
			t.Fatalf("d=%d: average degree %.2f too far below target", d, avg)
		}
	}
}

func TestNearRegularErrors(t *testing.T) {
	if _, err := NearRegular(5, 5, 1); err == nil {
		t.Fatal("expected d<n error")
	}
	if _, err := NearRegular(5, -1, 1); err == nil {
		t.Fatal("expected d>=0 error")
	}
}

func TestForestUnionArboricity(t *testing.T) {
	for _, a := range []int{1, 2, 5} {
		g := ForestUnion(300, a, 3)
		if bound := graph.ArboricityUpperBound(g); bound > 2*a {
			t.Fatalf("a=%d: degeneracy bound %d exceeds 2a", a, bound)
		}
		if g.M() > a*(g.N()-1) {
			t.Fatalf("a=%d: too many edges %d for a forests", a, g.M())
		}
	}
}

func TestForestUnionHub(t *testing.T) {
	g, err := ForestUnionHub(500, 3, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) < 200 {
		t.Fatalf("hub degree %d < requested 200", g.Degree(0))
	}
	if bound := graph.ArboricityUpperBound(g); bound > 2*(3+1) {
		t.Fatalf("arboricity bound %d too large", bound)
	}
	if _, err := ForestUnionHub(10, 1, 10, 1); err == nil {
		t.Fatal("expected hubDeg<n error")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("grid n=%d", g.N())
	}
	if g.M() != 4*4+3*5 {
		t.Fatalf("grid m=%d, want %d", g.M(), 4*4+3*5)
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid maxdeg=%d", g.MaxDegree())
	}
	if a := graph.ArboricityUpperBound(g); a > 2 {
		t.Fatalf("grid degeneracy %d > 2", a)
	}
}

func TestGeometric(t *testing.T) {
	g := Geometric(300, 0.1, 9)
	// Verify symmetric construction against a brute-force pass is implicit
	// in the builder; check basic sanity and determinism here.
	g2 := Geometric(300, 0.1, 9)
	if !equalEdges(g, g2) {
		t.Fatal("geometric not deterministic")
	}
	if g.M() == 0 {
		t.Fatal("geometric graph unexpectedly empty")
	}
}

func TestGeometricMatchesBruteForce(t *testing.T) {
	// Rebuild with a tiny n and compare against O(n²) distance checks done
	// through the public API: every edge must be < radius apart implies the
	// cell hashing missed nothing if edge counts match brute force. We can't
	// access coordinates, so instead verify structural soundness: max degree
	// under the union bound and determinism across runs were covered above;
	// here check radius monotonicity: larger radius never removes edges.
	small := Geometric(150, 0.08, 4)
	big := Geometric(150, 0.16, 4)
	if small.M() > big.M() {
		t.Fatalf("radius monotonicity violated: %d > %d", small.M(), big.M())
	}
	for e := 0; e < small.M(); e++ {
		u, v := small.Endpoints(e)
		if !big.HasEdge(u, v) {
			t.Fatal("edge present at small radius missing at large radius")
		}
	}
}

func TestTree(t *testing.T) {
	g := Tree(100, 8)
	if g.M() != 99 {
		t.Fatalf("tree edges %d", g.M())
	}
	if !graph.IsConnected(g) {
		t.Fatal("tree should be connected")
	}
}

func TestUniformHypergraph(t *testing.T) {
	h, err := UniformHypergraph(50, 3, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Edges) != 80 || h.Rank != 3 {
		t.Fatal("hypergraph size wrong")
	}
	if _, err := UniformHypergraph(2, 3, 5, 1); err == nil {
		t.Fatal("expected rank>nv error")
	}
}

func TestBoundedDiversityCliqueGraph(t *testing.T) {
	g, cliques, err := BoundedDiversityCliqueGraph(100, 30, 6, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Diversity bound: no vertex in more than maxPerV cliques.
	count := make([]int, g.N())
	for _, c := range cliques {
		if len(c) != 6 {
			t.Fatalf("clique size %d, want 6", len(c))
		}
		for _, v := range c {
			count[v]++
		}
		// Clique edges present.
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(int(c[i]), int(c[j])) {
					t.Fatal("clique edge missing")
				}
			}
		}
	}
	for v, cnt := range count {
		if cnt > 3 {
			t.Fatalf("vertex %d in %d cliques, max 3", v, cnt)
		}
	}
	if _, _, err := BoundedDiversityCliqueGraph(4, 1, 6, 1, 1); err == nil {
		t.Fatal("expected cliqueSize>n error")
	}
}

func TestSeedStabilityQuick(t *testing.T) {
	f := func(seed int64) bool {
		a := ForestUnion(60, 2, seed)
		b := ForestUnion(60, 2, seed)
		return equalEdges(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
