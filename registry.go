package distcolor

// This file is the algorithm registry, the single extensible surface behind
// every way of invoking the library: the Run entry point, the wire codec
// (codec.go), the colord service (internal/service, /v1/algorithms), and
// the CLIs. An Algorithm value is a self-describing descriptor — name, kind
// (edge or vertex), declared palette formula, and a parameter schema with
// defaults and bounds — plus the function that runs it. Registering one
// descriptor makes the algorithm reachable from every surface at once;
// nothing else in the codebase enumerates algorithms.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Kind says what a coloring's Colors slice is indexed by.
type Kind string

const (
	// KindEdge colorings are indexed by the graph's edge identifiers.
	KindEdge Kind = "edge"
	// KindVertex colorings are indexed by vertices.
	KindVertex Kind = "vertex"
)

// Params carries an algorithm's numeric parameters by schema name. Integer
// parameters travel as float64 values (they are range-checked against the
// schema, which also pins their Type). A missing key — or an explicit zero,
// matching the wire codec's omitempty semantics — selects the schema
// default.
type Params map[string]float64

// ParamSpec describes one parameter of a registered algorithm: its wire
// name, type, default, and accepted range. It is served verbatim by the
// colord /v1/algorithms endpoint so clients can discover and validate
// parameters without hardcoding algorithm knowledge.
type ParamSpec struct {
	Name string `json:"name"`
	// Type is "int" or "float".
	Type string `json:"type"`
	// Default is substituted for a missing (or zero) value.
	Default float64 `json:"default"`
	// Min and Max bound accepted values (inclusive).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// ClampMin, when positive, raises in-range values below it up to
	// ClampMin instead of rejecting them. It expresses the Section 5
	// threshold multiplier's documented behavior: any positive q is
	// accepted, but values below 2.05 run as 2.05.
	ClampMin float64 `json:"clamp_min,omitempty"`
	Doc      string  `json:"doc,omitempty"`
}

// UnknownAlgorithmError reports a name with no registered algorithm.
type UnknownAlgorithmError struct {
	Name string
}

func (e *UnknownAlgorithmError) Error() string {
	return fmt.Sprintf("distcolor: unknown algorithm %q", e.Name)
}

// ParamError reports a parameter value rejected by an algorithm's schema.
type ParamError struct {
	Algorithm string
	Param     string
	Value     float64
	Reason    string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("distcolor: %s: parameter %q = %v %s", e.Algorithm, e.Param, e.Value, e.Reason)
}

// Coloring is the unified result of any registered algorithm: one type for
// edge and vertex colorings, distinguished by Kind.
type Coloring struct {
	// Kind says whether Colors is indexed by edge identifiers or vertices.
	Kind Kind
	// Colors holds the computed coloring.
	Colors []int64
	// Palette is the guaranteed bound: all colors are < Palette.
	Palette int64
	// Stats reports the executed rounds and messages.
	Stats Stats
	// Algorithm names the procedure that actually ran — for the adaptive
	// sparse algorithm this is the chosen plan (e.g. "thm5.3"), for the
	// recursive families it includes the depth (e.g. "star-partition/x=2").
	Algorithm string
	// Params echoes the resolved parameters of the run: schema defaults
	// applied, clamps applied, and dynamic values (an estimated arboricity)
	// filled in.
	Params Params
}

// AlgorithmFunc executes a registered algorithm. It receives the resolved
// parameters (defaults applied and bounds checked against the schema) and
// may write back dynamically resolved values (e.g. an estimated
// arboricity), which Run then reports in Coloring.Params.
type AlgorithmFunc func(ctx context.Context, g *Graph, p Params, opt Options) (*Coloring, error)

// Algorithm is a self-describing registry entry.
type Algorithm struct {
	// Name is the stable wire identifier (e.g. "edge/star").
	Name string
	// Kind is what the produced coloring is indexed by.
	Kind Kind
	// Doc is a one-line description.
	Doc string
	// Palette is the declared palette formula, human-readable (e.g.
	// "2^{x+1}·Δ").
	Palette string
	// Params is the parameter schema. Parameters not listed here are
	// rejected by Run.
	Params []ParamSpec
	// NeedsCover marks algorithms that require Options.Cover (a clique
	// cover; on the wire, GraphSpec.Cliques).
	NeedsCover bool
	// Applicable, when non-nil, checks structural preconditions against the
	// concrete graph (e.g. Δ ≥ 2^{x+1} for the star partition) after
	// parameter resolution.
	Applicable func(g *Graph, p Params) error
	// Run executes the algorithm. Run (the package-level entry point)
	// verifies the produced coloring, so implementations do not.
	Run AlgorithmFunc
}

// param returns the schema entry for name.
func (a *Algorithm) param(name string) (ParamSpec, bool) {
	for _, s := range a.Params {
		if s.Name == name {
			return s, true
		}
	}
	return ParamSpec{}, false
}

// resolve validates p against the schema and returns a fresh Params with
// defaults applied and clamps performed. Unknown names, NaN, and
// out-of-range values are rejected with *ParamError.
func (a *Algorithm) resolve(p Params) (Params, error) {
	out := make(Params, len(a.Params))
	for name, v := range p {
		spec, ok := a.param(name)
		if !ok {
			return nil, &ParamError{Algorithm: a.Name, Param: name, Value: v, Reason: "is not a parameter of this algorithm"}
		}
		if math.IsNaN(v) {
			return nil, &ParamError{Algorithm: a.Name, Param: name, Value: v, Reason: "is NaN"}
		}
		if v == 0 {
			continue // zero selects the default, like a missing key
		}
		if spec.Type == "int" && v != math.Trunc(v) {
			return nil, &ParamError{Algorithm: a.Name, Param: name, Value: v, Reason: "must be an integer"}
		}
		if v < spec.Min || v > spec.Max {
			return nil, &ParamError{
				Algorithm: a.Name, Param: name, Value: v,
				Reason: fmt.Sprintf("outside [%v, %v]", spec.Min, spec.Max),
			}
		}
		if spec.ClampMin > 0 && v < spec.ClampMin {
			v = spec.ClampMin
		}
		out[name] = v
	}
	for _, spec := range a.Params {
		if _, ok := out[spec.Name]; !ok && spec.Default != 0 {
			out[spec.Name] = spec.Default
		}
	}
	return out, nil
}

// registry is the process-wide algorithm table. Registration happens in
// init (algorithms.go) but stays open: an external package can register its
// own algorithm and it becomes reachable through Run, the codec, the
// service, and the CLIs with no further wiring.
var registry = struct {
	sync.RWMutex
	byName map[string]Algorithm
}{byName: make(map[string]Algorithm)}

// RegisterAlgorithm adds an algorithm to the registry. It panics on a
// duplicate name or a malformed descriptor — registration is programmer
// intent, not input.
func RegisterAlgorithm(a Algorithm) {
	if a.Name == "" || a.Run == nil {
		panic("distcolor: RegisterAlgorithm: descriptor needs Name and Run")
	}
	if a.Kind != KindEdge && a.Kind != KindVertex {
		panic(fmt.Sprintf("distcolor: RegisterAlgorithm %q: bad kind %q", a.Name, a.Kind))
	}
	for _, s := range a.Params {
		if s.Name == "" || (s.Type != "int" && s.Type != "float") {
			panic(fmt.Sprintf("distcolor: RegisterAlgorithm %q: bad param spec %+v", a.Name, s))
		}
		if s.Min > s.Max {
			panic(fmt.Sprintf("distcolor: RegisterAlgorithm %q: param %q has Min > Max", a.Name, s.Name))
		}
	}
	// Copy the schema on the way in and out (copySchema in the accessors),
	// so neither the registrant nor a descriptor consumer can mutate the
	// live schema that resolve() validates against.
	a.Params = append([]ParamSpec(nil), a.Params...)
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[a.Name]; dup {
		panic(fmt.Sprintf("distcolor: RegisterAlgorithm: duplicate %q", a.Name))
	}
	registry.byName[a.Name] = a
}

// copySchema returns the descriptor with its Params slice copied, so
// callers cannot alias the registry's backing array.
func (a Algorithm) copySchema() Algorithm {
	a.Params = append([]ParamSpec(nil), a.Params...)
	return a
}

// LookupAlgorithm returns the registered descriptor for name.
func LookupAlgorithm(name string) (Algorithm, bool) {
	registry.RLock()
	defer registry.RUnlock()
	a, ok := registry.byName[name]
	if !ok {
		return Algorithm{}, false
	}
	return a.copySchema(), true
}

// RegisteredAlgorithms returns every registered descriptor, sorted by name.
func RegisteredAlgorithms() []Algorithm {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Algorithm, 0, len(registry.byName))
	for _, a := range registry.byName {
		out = append(out, a.copySchema())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string {
	all := RegisteredAlgorithms()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// AlgorithmInfo is the wire form of a registry entry, served by the colord
// /v1/algorithms endpoint.
type AlgorithmInfo struct {
	Name       string      `json:"name"`
	Kind       Kind        `json:"kind"`
	Doc        string      `json:"doc,omitempty"`
	Palette    string      `json:"palette,omitempty"`
	NeedsCover bool        `json:"needs_cover,omitempty"`
	Params     []ParamSpec `json:"params"`
}

// DescribeAlgorithms returns the wire metadata of every registered
// algorithm, sorted by name.
func DescribeAlgorithms() []AlgorithmInfo {
	all := RegisteredAlgorithms()
	out := make([]AlgorithmInfo, len(all))
	for i, a := range all {
		params := a.Params
		if params == nil {
			params = []ParamSpec{}
		}
		out[i] = AlgorithmInfo{
			Name: a.Name, Kind: a.Kind, Doc: a.Doc, Palette: a.Palette,
			NeedsCover: a.NeedsCover, Params: params,
		}
	}
	return out
}

// Run executes a registered algorithm on g and returns its verified
// coloring: the single context-first entry point behind the wire codec, the
// colord service, and the CLIs.
//
// params are validated against the algorithm's schema — defaults applied,
// bounds enforced, NaN and out-of-range values rejected with *ParamError —
// and the resolved values are echoed in Coloring.Params. ctx cancellation
// and deadlines abort the underlying simulation at the next round boundary
// with an error wrapping context.Cause(ctx). The returned coloring is
// always proper within its declared palette; Run re-verifies it before
// returning.
func Run(ctx context.Context, g *Graph, algo string, params Params, opt Options) (*Coloring, error) {
	a, ok := LookupAlgorithm(algo)
	if !ok {
		return nil, &UnknownAlgorithmError{Name: algo}
	}
	p, err := a.resolve(params)
	if err != nil {
		return nil, err
	}
	if a.NeedsCover && opt.Cover == nil {
		return nil, fmt.Errorf("distcolor: %s requires a clique cover (Options.Cover)", a.Name)
	}
	if a.Applicable != nil {
		if err := a.Applicable(g, p); err != nil {
			return nil, err
		}
	}
	col, err := a.Run(ctx, g, p, opt)
	if err != nil {
		return nil, err
	}
	col.Kind = a.Kind
	col.Params = p
	switch a.Kind {
	case KindEdge:
		err = CheckEdgeColoring(g, col.Colors, col.Palette)
	case KindVertex:
		err = CheckVertexColoring(g, col.Colors, col.Palette)
	}
	if err != nil {
		return nil, fmt.Errorf("distcolor: %s produced an invalid coloring: %w", a.Name, err)
	}
	return col, nil
}
