package distcolor

// End-to-end integration tests: every public pipeline on every workload
// family, verified and cross-checked. These complement the per-package unit
// tests by exercising the full composition (generator → simulator →
// connector recursion → black box → verification) exactly the way the
// examples and benchmarks do.

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// families enumerates one representative graph per workload family.
func families(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	nr, err := gen.NearRegular(180, 14, 2017)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := gen.ForestUnionHub(300, 2, 120, 2017)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"near-regular": nr,
		"gnp":          gen.GNP(150, 0.08, 2017),
		"forest-hub":   hub,
		"grid":         gen.Grid(12, 15),
		"tree":         gen.Tree(200, 2017),
		"geometric":    gen.Geometric(250, 0.09, 2017),
		"complete":     graph.Complete(18),
		"bipartite":    graph.CompleteBipartite(10, 14),
	}
}

func TestIntegrationEdgeColoringAcrossFamilies(t *testing.T) {
	for name, g := range families(t) {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			if g.MaxDegree() >= 4 {
				res, err := EdgeColorStar(g, 1, Options{})
				if err != nil {
					t.Fatalf("star: %v", err)
				}
				if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
					t.Fatalf("star: %v", err)
				}
				if res.Palette > int64(4*g.MaxDegree()) {
					t.Fatalf("star palette %d > 4Δ", res.Palette)
				}
			}
			res, err := EdgeColorGreedy(g, Options{})
			if err != nil {
				t.Fatalf("greedy: %v", err)
			}
			if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
				t.Fatalf("greedy: %v", err)
			}

			a := ArboricityUpperBound(g)
			if a >= 1 && g.M() > 0 {
				sp, err := EdgeColorSparse(g, a, Options{})
				if err != nil {
					t.Fatalf("sparse(a=%d): %v", a, err)
				}
				if err := CheckEdgeColoring(g, sp.Colors, sp.Palette); err != nil {
					t.Fatalf("sparse: %v", err)
				}
			}
		})
	}
}

func TestIntegrationVertexColoringAcrossFamilies(t *testing.T) {
	for name, g := range families(t) {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			res, err := VertexColor(g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckVertexColoring(g, res.Colors, int64(g.MaxDegree())+1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIntegrationCDLineGraphEquivalence(t *testing.T) {
	// Edge-coloring g and vertex-coloring L(g) with CD must both be proper
	// and agree on the translation (an edge coloring of g IS a vertex
	// coloring of L(g) and vice versa).
	base := gen.GNP(40, 0.2, 99)
	lg, cov, edgeOf, err := LineCover(base)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x <= 2; x++ {
		res, err := VertexColorCD(lg, cov, x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		edgeColors := make([]int64, base.M())
		for lv, e := range edgeOf {
			edgeColors[e] = res.Colors[lv]
		}
		if err := CheckEdgeColoring(base, edgeColors, res.Palette); err != nil {
			t.Fatalf("x=%d: translated edge coloring improper: %v", x, err)
		}
		d, s := cov.Diversity(), cov.MaxCliqueSize()
		bound := int64(s)
		for i := 0; i <= x; i++ {
			bound *= int64(d)
		}
		if res.Palette > bound {
			t.Fatalf("x=%d: palette %d above D^{x+1}S=%d", x, res.Palette, bound)
		}
	}
}

func TestIntegrationTradeoffShape(t *testing.T) {
	// The Table 1 trade-off on one workload: palettes increase strictly
	// with x, and deeper recursion buys rounds relative to x=1. (Exact
	// monotonicity across all x only holds asymptotically — at finite Δ the
	// per-level constant can make x=3 no better than x=2, so we assert the
	// paper-relevant comparisons: every x>1 beats x=1 on rounds.)
	g, err := gen.NearRegular(512, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevPalette := base.Palette
	for x := 2; x <= 3; x++ {
		res, err := EdgeColorStar(g, x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if res.Stats.Rounds >= base.Stats.Rounds {
			t.Fatalf("x=%d: rounds %d not below x=1's %d", x, res.Stats.Rounds, base.Stats.Rounds)
		}
		if res.Palette <= prevPalette {
			t.Fatalf("x=%d: palette %d did not increase from %d", x, res.Palette, prevPalette)
		}
		prevPalette = res.Palette
	}
}

func TestIntegrationOursBeatsPreviousRounds(t *testing.T) {
	// The headline comparison of Table 1 at x=1: same color regime (4Δ vs
	// (4+ε)Δ) but our balanced parameter choice must finish in fewer rounds.
	for _, delta := range []int{27, 64} {
		g, err := gen.NearRegular(8*delta, delta, 77)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := EdgeColorStar(g, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prevColors, prevStats, err := runBE11(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.EdgeColoring(g, prevColors, int64(5*g.MaxDegree())); err != nil {
			t.Fatal(err)
		}
		if ours.Stats.Rounds >= prevStats.Rounds {
			t.Fatalf("Δ=%d: ours %d rounds not below previous %d", delta, ours.Stats.Rounds, prevStats.Rounds)
		}
	}
}

func TestIntegrationSparseBeatsClassicColorsAtScale(t *testing.T) {
	// Section 5 headline: for a ≪ Δ the sparse pipeline uses fewer colors
	// than 2Δ−1 while the classical baseline burns far more rounds.
	g, err := gen.ForestUnionHub(900, 2, 400, 13)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := EdgeColorSparseWith(g, 3, SparseHPartition, Options{})
	if err != nil {
		t.Fatal(err)
	}
	classic, err := EdgeColorGreedy(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Palette >= classic.Palette {
		t.Fatalf("sparse palette %d not below classic %d", sparse.Palette, classic.Palette)
	}
	if sparse.Stats.Rounds >= classic.Stats.Rounds {
		t.Fatalf("sparse rounds %d not below classic %d", sparse.Stats.Rounds, classic.Stats.Rounds)
	}
}

func TestIntegrationDeterminismAcrossRuns(t *testing.T) {
	g, err := gen.NearRegular(160, 12, 31)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Colors {
		if a.Colors[e] != bres.Colors[e] {
			t.Fatal("two identical runs disagreed")
		}
	}
	if a.Stats != bres.Stats {
		t.Fatal("stats of identical runs disagreed")
	}
}

// runBE11 exposes the baseline through a tiny wrapper so the integration
// test reads naturally.
func runBE11(g *graph.Graph, x int) ([]int64, Stats, error) {
	res, err := be11Edge(g, x)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.colors, res.stats, nil
}

type be11Result struct {
	colors []int64
	stats  Stats
}

func be11Edge(g *graph.Graph, x int) (*be11Result, error) {
	r, err := baselineBE11(g, x)
	if err != nil {
		return nil, err
	}
	return &be11Result{colors: r.Colors, stats: r.Stats}, nil
}

func ExampleVertexColorCD() {
	// Edge-color a graph by CD-vertex-coloring its line graph (D = 2).
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g, _ := b.Build()
	lg, cover, _, _ := LineCover(g)
	res, _ := VertexColorCD(lg, cover, 1, Options{})
	fmt.Println(CheckVertexColoring(lg, res.Colors, res.Palette) == nil)
	// Output: true
}

func ExampleEdgeColorSparse() {
	// A star has arboricity 1: the sparse pipeline colors it with Δ+O(1)
	// colors (here Δ=9, palette bound Δ+3θ−2 with θ=3).
	b := NewBuilder(10)
	for v := 1; v < 10; v++ {
		b.AddEdge(0, v)
	}
	g, _ := b.Build()
	res, _ := EdgeColorSparse(g, 1, Options{})
	fmt.Println(CheckEdgeColoring(g, res.Colors, res.Palette) == nil, res.Palette <= 16)
	// Output: true true
}

func ExampleEdgeColorStar() {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 4)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g, _ := b.Build()
	res, _ := EdgeColorStar(g, 1, Options{})
	fmt.Println(CheckEdgeColoring(g, res.Colors, res.Palette) == nil)
	// Output: true
}
