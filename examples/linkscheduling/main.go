// Link scheduling in a wireless sensor network — the motivating application
// of §1.2 ([19]: "link scheduling in sensor networks: distributed edge
// coloring revisited").
//
// Sensors are scattered in the unit square; two sensors within radio range
// share a link. A TDMA schedule must assign every link a time slot so that
// no sensor transmits or receives in two links at once — exactly a proper
// edge coloring, with the frame length equal to the palette size. Fewer
// colors ⇒ shorter frames ⇒ lower latency; fewer rounds ⇒ faster network
// self-configuration after deployment.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	distcolor "repro"
)

func main() {
	const (
		sensors = 800
		radius  = 0.06
	)
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, sensors)
	ys := make([]float64, sensors)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	b := distcolor.NewBuilder(sensors)
	links := 0
	for i := 0; i < sensors; i++ {
		for j := i + 1; j < sensors; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if math.Hypot(dx, dy) < radius {
				b.AddEdge(i, j)
				links++
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d sensors, %d links, max radio degree Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	if g.MaxDegree() < 4 {
		log.Fatal("radio range too small for a meaningful schedule")
	}

	schedule := func(name string, colors []int64, palette int64, rounds int) {
		if err := distcolor.CheckEdgeColoring(g, colors, palette); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		// Slot utilization: how busy the busiest slot is vs the average.
		busy := make(map[int64]int)
		for _, c := range colors {
			busy[c]++
		}
		peak := 0
		for _, cnt := range busy {
			if cnt > peak {
				peak = cnt
			}
		}
		fmt.Printf("%-22s frame length %4d slots  setup %5d rounds  peak slot %d links\n",
			name, palette, rounds, peak)
	}

	// The paper's 4Δ algorithm: slightly longer frame, far faster setup.
	fast, err := distcolor.EdgeColorStar(g, 1, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	schedule("star partition (4Δ)", fast.Colors, fast.Palette, fast.Stats.Rounds)

	// Classical (2Δ−1): shortest frame among the distributed options here.
	tight, err := distcolor.EdgeColorGreedy(g, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	schedule("classical (2Δ−1)", tight.Colors, tight.Palette, tight.Stats.Rounds)

	// Geometric graphs are sparse (bounded arboricity in practice): the
	// Section 5 pipeline gets close to the Δ+1 optimum.
	arb := distcolor.ArboricityUpperBound(g)
	sparse, err := distcolor.EdgeColorSparse(g, arb, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	schedule(fmt.Sprintf("sparse (%s, a≤%d)", sparse.Algorithm, arb), sparse.Colors, sparse.Palette, sparse.Stats.Rounds)

	fmt.Printf("\nlower bound: any schedule needs ≥ Δ = %d slots; Vizing guarantees Δ+1 = %d exist centrally\n",
		g.MaxDegree(), g.MaxDegree()+1)
}
