// Channel allocation for group communication — vertex coloring of a graph
// with bounded diversity (§1.2, Table 2).
//
// Multicast sessions each span 3 stations (a 3-uniform hypergraph). Two
// sessions interfere when they share a station, so sessions need channels
// such that interfering sessions differ — a vertex coloring of the
// hypergraph's line graph. That graph has diversity D ≤ 3: every session
// belongs to at most 3 station-cliques. CD-Coloring exploits exactly this
// structure (Theorem 3.3(i): D^{x+1}·S colors), where a general-purpose
// (Δ+1) algorithm sees only the much blunter maximum degree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	distcolor "repro"
)

func main() {
	const (
		stations = 120
		sessions = 400
	)
	rng := rand.New(rand.NewSource(23))
	edges := make([][]int, 0, sessions)
	for s := 0; s < sessions; s++ {
		perm := rng.Perm(stations)
		edges = append(edges, perm[:3])
	}
	h, err := distcolor.NewHypergraph(stations, 3, edges)
	if err != nil {
		log.Fatal(err)
	}
	conflict, cover, err := distcolor.HypergraphLineCover(h)
	if err != nil {
		log.Fatal(err)
	}
	d, s := cover.Diversity(), cover.MaxCliqueSize()
	fmt.Printf("sessions: %d, stations: %d — conflict graph n=%d m=%d Δ=%d, diversity D=%d, clique size S=%d\n",
		sessions, stations, conflict.N(), conflict.M(), conflict.MaxDegree(), d, s)

	for x := 1; x <= 3; x++ {
		res, cdErr := distcolor.VertexColorCD(conflict, cover, x, distcolor.Options{})
		if cdErr != nil {
			log.Fatal(cdErr)
		}
		if err := distcolor.CheckVertexColoring(conflict, res.Colors, res.Palette); err != nil {
			log.Fatal(err)
		}
		bound := s
		for i := 0; i <= x; i++ {
			bound *= d
		}
		fmt.Printf("CD-coloring x=%d: %4d channels (bound D^%d·S = %d), %5d rounds\n",
			x, res.Palette, x+1, bound, res.Stats.Rounds)
	}

	// Reference: the (Δ+1) black box ignores the clique structure.
	plain, err := distcolor.VertexColor(conflict, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(Δ+1) black box:  %4d channels, %5d rounds — fewest channels, most rounds\n",
		plain.Palette, plain.Stats.Rounds)
	fmt.Println("\nthe Table-2 trade-off: diversity-aware decomposition buys rounds with channels")
}
