// Open-shop scheduling via edge coloring — the §1.2 motivation from [37]
// ("Short shop schedules").
//
// J jobs must each visit a subset of M machines for one unit of time, in
// any order; a machine processes one job at a time and a job is on one
// machine at a time. Model tasks as edges of a bipartite job–machine
// graph: a proper edge coloring is exactly a conflict-free timetable, and
// the palette size is the makespan. By König's theorem the optimum is Δ;
// the distributed algorithms trade makespan slack for coordination rounds
// when the shop floor has no central scheduler.
package main

import (
	"fmt"
	"log"
	"math/rand"

	distcolor "repro"
)

func main() {
	const (
		jobs     = 300
		machines = 60
		tasksPer = 18 // machines visited per job
	)
	rng := rand.New(rand.NewSource(11))
	b := distcolor.NewBuilder(jobs + machines)
	total := 0
	for j := 0; j < jobs; j++ {
		perm := rng.Perm(machines)
		for _, m := range perm[:tasksPer] {
			b.AddEdge(j, jobs+m) // one unit task: job j on machine m
			total++
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	delta := g.MaxDegree()
	fmt.Printf("open shop: %d jobs × %d machines, %d unit tasks, Δ = %d (optimal makespan)\n",
		jobs, machines, total, delta)

	report := func(name string, palette int64, rounds int, colors []int64) {
		if err := distcolor.CheckEdgeColoring(g, colors, palette); err != nil {
			log.Fatalf("%s: invalid timetable: %v", name, err)
		}
		fmt.Printf("%-22s makespan %4d (%.2f× optimum)  %6d coordination rounds\n",
			name, palette, float64(palette)/float64(delta), rounds)
	}

	star, err := distcolor.EdgeColorStar(g, 1, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("star partition (4Δ)", star.Palette, star.Stats.Rounds, star.Colors)

	star2, err := distcolor.EdgeColorStar(g, 2, distcolor.Options{})
	if err == nil {
		report("star partition (8Δ)", star2.Palette, star2.Stats.Rounds, star2.Colors)
	}

	classic, err := distcolor.EdgeColorGreedy(g, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("classical (2Δ−1)", classic.Palette, classic.Stats.Rounds, classic.Colors)

	fmt.Println("\nthe Table-1 trade-off, on a shop floor: more slots ⇒ fewer rounds to agree on the timetable")
}
