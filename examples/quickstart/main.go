// Quickstart: build a graph, edge-color it with the paper's 4Δ algorithm,
// verify the result, and inspect the distributed cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	distcolor "repro"
)

func main() {
	// Build a random graph with ~n·d/2 edges using the public Builder.
	const n, d = 500, 24
	rng := rand.New(rand.NewSource(42))
	b := distcolor.NewBuilder(n)
	seen := map[[2]int]bool{}
	for k := 0; k < n*d/2; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	// The paper's star-partition algorithm at x=1: at most 4Δ colors.
	res, err := distcolor.EdgeColorStar(g, 1, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := distcolor.CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star partition (x=1): palette ≤ %d (4Δ = %d), rounds = %d, messages = %d\n",
		res.Palette, 4*g.MaxDegree(), res.Stats.Rounds, res.Stats.Messages)

	// Compare against the classical distributed (2Δ−1)-edge-coloring: fewer
	// colors, but many more rounds — the trade-off of Table 1.
	base, err := distcolor.EdgeColorGreedy(g, distcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical 2Δ−1:      palette ≤ %d, rounds = %d, messages = %d\n",
		base.Palette, base.Stats.Rounds, base.Stats.Messages)
	fmt.Printf("round speedup of the paper's algorithm: %.1f×\n",
		float64(base.Stats.Rounds)/float64(res.Stats.Rounds))
}
