package distcolor

// baselineBE11 bridges the integration tests to the internal baseline
// package without widening the public API surface.

import (
	"context"
	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/star"
)

func baselineBE11(g *graph.Graph, x int) (*star.Result, error) {
	return baseline.BE11EdgeColor(context.Background(), g, x, star.Options{})
}
