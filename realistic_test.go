package distcolor

// Workload tests on the "realistic" generator families: heavy-tailed
// preferential-attachment graphs (the a ≪ Δ regime arising in practice) and
// regular bipartite graphs (where König's theorem pins the optimum at Δ).

import (
	"testing"

	"repro/internal/gen"
)

func TestSparsePipelineOnPreferentialAttachment(t *testing.T) {
	g, err := gen.PreferentialAttachment(2000, 3, 2017)
	if err != nil {
		t.Fatal(err)
	}
	a := ArboricityUpperBound(g) // ≤ m = 3 by construction
	if a > 3 {
		t.Fatalf("arboricity estimate %d exceeds attachment parameter", a)
	}
	res, err := EdgeColorSparse(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// Δ ≫ a on this family, so the sparse pipeline must beat 2Δ−1.
	if res.Palette >= int64(2*g.MaxDegree()-1) {
		t.Fatalf("palette %d not below 2Δ−1 = %d (Δ=%d, a=%d)",
			res.Palette, 2*g.MaxDegree()-1, g.MaxDegree(), a)
	}
}

func TestStarOnRegularBipartite(t *testing.T) {
	g, err := gen.RegularBipartite(128, 16, 2017)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// König: optimum is Δ; the 4Δ guarantee leaves a factor ≤ 4.
	if res.Palette > int64(4*g.MaxDegree()) {
		t.Fatalf("palette %d exceeds 4Δ", res.Palette)
	}
}

func TestSparseOnCaterpillar(t *testing.T) {
	// Extreme a ≪ Δ: a tree (a=1) with Δ = 66.
	g := gen.Caterpillar(30, 64)
	res, err := EdgeColorSparseWith(g, 1, SparseHPartition, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// Δ + 3θ − 2 with θ = 3: Δ+7 — essentially optimal.
	if res.Palette > int64(g.MaxDegree()+8) {
		t.Fatalf("palette %d far from Δ+O(1) on a tree (Δ=%d)", res.Palette, g.MaxDegree())
	}
}
