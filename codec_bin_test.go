package distcolor

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
)

// randRequest builds an arbitrary (not necessarily valid) request: the
// codec must round-trip anything representable, including shapes Build or
// Validate would reject.
func randRequest(rng *rand.Rand) *Request {
	n := rng.Intn(2000)
	m := rng.Intn(500)
	var edges [][2]int
	if m > 0 {
		edges = make([][2]int, m)
		sorted := rng.Intn(2) == 0
		u := 0
		for i := range edges {
			if sorted && n > 0 {
				u += rng.Intn(3)
				edges[i] = [2]int{u % n, (u + 1 + rng.Intn(4)) % n}
			} else if n > 0 {
				edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
			}
			if rng.Intn(50) == 0 {
				// Occasional out-of-range endpoint: forces the delta
				// fallback, which must stay faithful.
				edges[i] = [2]int{-1 - rng.Intn(10), n + rng.Intn(10)}
			}
		}
	}
	var cliques [][]int32
	for i := rng.Intn(4); i > 0; i-- {
		c := make([]int32, 1+rng.Intn(5))
		for j := range c {
			c[j] = int32(rng.Intn(n + 1))
		}
		cliques = append(cliques, c)
	}
	var params Params
	for i := rng.Intn(3); i > 0; i-- {
		if params == nil {
			params = Params{}
		}
		params[[]string{"x", "q", "arboricity", "weird"}[rng.Intn(4)]] = float64(rng.Intn(100)) / 3
	}
	return &Request{
		Algorithm:  []string{AlgoEdgeGreedy, AlgoEdgeStar, "no/such", ""}[rng.Intn(4)],
		Graph:      GraphSpec{N: n, Edges: edges, Cliques: cliques},
		Params:     params,
		X:          rng.Intn(4),
		Arboricity: rng.Intn(6),
		Q:          float64(rng.Intn(8)) / 2,
		Parallel:   rng.Intn(2) == 0,
	}
}

func randResponse(rng *rand.Rand) *Response {
	var colors []int64
	for i := rng.Intn(300); i > 0; i-- {
		colors = append(colors, int64(rng.Intn(1000)-3))
	}
	return &Response{
		Kind:      []Kind{KindEdge, KindVertex}[rng.Intn(2)],
		Algorithm: "star-partition/x=2",
		Colors:    colors,
		Palette:   int64(rng.Intn(1 << 20)),
		Stats: Stats{
			Rounds:            rng.Intn(1000),
			Messages:          int64(rng.Intn(1 << 30)),
			Bits:              int64(rng.Intn(1 << 30)),
			MaxMessageBits:    int64(rng.Intn(256)),
			CongestViolations: int64(rng.Intn(3)),
		},
		Delta:      rng.Intn(64),
		Arboricity: rng.Intn(16),
	}
}

// TestBinaryJSONEquivalence is the JSON↔binary property test: for randomly
// generated wire values, decode(binary(v)) and decode(json(v)) must agree
// — the two codecs describe one wire model, differing only in bytes.
func TestBinaryJSONEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	for i := 0; i < 300; i++ {
		req := randRequest(rng)
		var fromBin, fromJSON Request
		roundTripBoth(t, req, &fromBin, &fromJSON)
		if !reflect.DeepEqual(fromBin, fromJSON) {
			t.Fatalf("request %d: binary %+v != json %+v", i, fromBin, fromJSON)
		}

		resp := randResponse(rng)
		var rBin, rJSON Response
		roundTripBoth(t, resp, &rBin, &rJSON)
		if !reflect.DeepEqual(rBin, rJSON) {
			t.Fatalf("response %d: binary %+v != json %+v", i, rBin, rJSON)
		}

		rec := &JobRecord{Schema: JobRecordSchema, ID: "j1", State: "done", Request: req, Response: resp, WallMS: int64(i), CacheHit: i%2 == 0}
		var jrBin, jrJSON JobRecord
		roundTripBoth(t, rec, &jrBin, &jrJSON)
		if !reflect.DeepEqual(jrBin, jrJSON) {
			t.Fatalf("job record %d: binary %+v != json %+v", i, jrBin, jrJSON)
		}
	}
}

func roundTripBoth(t *testing.T, v any, binOut, jsonOut any) {
	t.Helper()
	bb, err := CodecBinary.Encode(v)
	if err != nil {
		t.Fatalf("binary encode %T: %v", v, err)
	}
	if err := CodecBinary.Decode(bb, binOut); err != nil {
		t.Fatalf("binary decode %T: %v", v, err)
	}
	jb, err := CodecJSON.Encode(v)
	if err != nil {
		t.Fatalf("json encode %T: %v", v, err)
	}
	if err := CodecJSON.Decode(jb, jsonOut); err != nil {
		t.Fatalf("json decode %T: %v", v, err)
	}
}

// TestBinaryRoundTripColoring covers the Coloring wire type, which has no
// JSON fixture of its own.
func TestBinaryRoundTripColoring(t *testing.T) {
	c := &Coloring{
		Kind: KindVertex, Colors: []int64{0, 2, 1, 0}, Palette: 3,
		Stats:     Stats{Rounds: 7, Messages: 99},
		Algorithm: "delta1", Params: Params{"x": 2},
	}
	b, err := CodecBinary.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	var got Coloring
	if err := CodecBinary.Decode(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*c, got) {
		t.Fatalf("coloring round trip: got %+v want %+v", got, *c)
	}
}

// TestBinaryEdgeModes pins that both edge encodings are exercised and
// chosen by exact size: a dense random-order list picks the packed mode, a
// sorted list picks deltas, and both decode back identically.
func TestBinaryEdgeModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 16
	random := make([][2]int, 4096)
	for i := range random {
		random[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	sorted := make([][2]int, 4096)
	for i := range sorted {
		sorted[i] = [2]int{i, i + 1}
	}
	for name, tc := range map[string]struct {
		edges [][2]int
		mode  byte
		flag  uint16
	}{
		"random-picks-packed": {random, edgeModePacked, flagPackedEdges},
		"sorted-picks-delta":  {sorted, edgeModeDelta, flagDeltaEdges},
	} {
		t.Run(name, func(t *testing.T) {
			spec := &GraphSpec{N: n, Edges: tc.edges}
			b, err := CodecBinary.Encode(spec)
			if err != nil {
				t.Fatal(err)
			}
			// count varint + mode byte after the 8+6 frame/header prefix.
			body := b[framePrefixLen+frameHeaderLen:]
			d := &binDec{buf: body}
			d.intv() // N
			d.uv()   // edge count
			if got := d.byte1(); got != tc.mode {
				t.Fatalf("edge mode = %d, want %d", got, tc.mode)
			}
			var dec GraphSpec
			if err := CodecBinary.Decode(b, &dec); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(spec.Edges, dec.Edges) {
				t.Fatal("edge list did not round-trip")
			}
		})
	}
}

// TestBinaryDecodeRejects pins the decoder's refusal paths: corruption,
// truncation, version and feature-flag skew, kind mismatch, trailing
// bytes.
func TestBinaryDecodeRejects(t *testing.T) {
	good, err := CodecBinary.Encode(&Request{Algorithm: AlgoEdgeGreedy, Graph: GraphSpec{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"flipped payload bit": mut(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }),
		"truncated":           mut(func(b []byte) []byte { return b[:len(b)-3] }),
		"trailing bytes":      mut(func(b []byte) []byte { return append(b, 0) }),
		"future version": mut(func(b []byte) []byte {
			b[framePrefixLen+1] = frameVersion + 1
			return refreshCRC(b)
		}),
		"unknown feature flag": mut(func(b []byte) []byte {
			b[framePrefixLen+5] |= 0x80
			return refreshCRC(b)
		}),
		"reserved byte set": mut(func(b []byte) []byte {
			b[framePrefixLen+3] = 7
			return refreshCRC(b)
		}),
		"empty": {},
	}
	for name, data := range cases {
		var req Request
		if err := CodecBinary.Decode(data, &req); err == nil {
			t.Errorf("%s: decode accepted corrupt frame", name)
		}
	}
	// Kind mismatch: a Request frame decoded as a Response.
	var resp Response
	if err := CodecBinary.Decode(good, &resp); err == nil {
		t.Error("kind mismatch: request frame decoded as response")
	}
}

// refreshCRC re-seals a mutated frame so the corruption under test is the
// header skew itself, not a CRC mismatch.
func refreshCRC(b []byte) []byte {
	payload := b[framePrefixLen:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	return b
}

// TestStreamRoundTrip drives the chunked form end to end, including a
// chunk size that does not divide the edge count.
func TestStreamRoundTrip(t *testing.T) {
	g, err := gen.NearRegular(500, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{
		Algorithm: AlgoEdgeSparse, Graph: Spec(g),
		Params: Params{"arboricity": 4}, Q: 2.5, Parallel: true,
	}
	var buf bytes.Buffer
	if err := WriteRequestStream(&buf, req, 97); err != nil {
		t.Fatal(err)
	}
	if got := RequestStreamLen(req, 97); got != int64(buf.Len()) {
		t.Fatalf("RequestStreamLen = %d, stream is %d bytes", got, buf.Len())
	}
	rr := NewRequestReader(&buf)
	skel, err := rr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Chunked() {
		t.Fatal("stream not recognized as chunked")
	}
	if rr.Declared() != len(req.Graph.Edges) {
		t.Fatalf("declared %d edges, want %d", rr.Declared(), len(req.Graph.Edges))
	}
	var edges [][2]int
	chunks := 0
	for {
		chunk, done, err := rr.ReadChunk()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		chunks++
		edges = append(edges, chunk...)
	}
	if want := (len(req.Graph.Edges) + 96) / 97; chunks != want {
		t.Fatalf("stream used %d chunks, want %d", chunks, want)
	}
	skel.Graph.Edges = edges
	if !reflect.DeepEqual(req, skel) {
		t.Fatalf("stream round trip: got %+v want %+v", skel, req)
	}
}

// TestStreamSingleFrameBegin pins that RequestReader accepts a plain
// Request frame (the non-chunked binary submit path).
func TestStreamSingleFrameBegin(t *testing.T) {
	req := &Request{Algorithm: AlgoEdgeGreedy, Graph: GraphSpec{N: 4, Edges: [][2]int{{0, 1}, {2, 3}}}}
	b, err := CodecBinary.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRequestReader(bytes.NewReader(b))
	got, err := rr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Chunked() {
		t.Fatal("single frame misread as chunked")
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("got %+v want %+v", got, req)
	}
}

// TestStreamTallyMismatch pins that a stream lying about its edge count is
// rejected at the end frame, not silently accepted.
func TestStreamTallyMismatch(t *testing.T) {
	req := &Request{Algorithm: AlgoEdgeGreedy, Graph: GraphSpec{N: 10, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}}
	var buf bytes.Buffer
	if err := WriteRequestStream(&buf, req, 2); err != nil {
		t.Fatal(err)
	}
	// Corrupt the declared count in the header frame: re-encode with a lie.
	lying := &Request{Algorithm: req.Algorithm, Graph: GraphSpec{N: 10, Edges: req.Graph.Edges[:2]}}
	var lieBuf bytes.Buffer
	if err := WriteRequestStream(&lieBuf, lying, 2); err != nil {
		t.Fatal(err)
	}
	// Header declares 2 edges; splice the 3-edge stream's chunks behind it.
	hdrLen := headerFrameLen(&lieBuf)
	spliced := append(append([]byte(nil), lieBuf.Bytes()[:hdrLen]...), buf.Bytes()[headerFrameLen(&buf):]...)
	rr := NewRequestReader(bytes.NewReader(spliced))
	if _, err := rr.Begin(); err != nil {
		t.Fatal(err)
	}
	for {
		_, done, err := rr.ReadChunk()
		if err != nil {
			return // expected: tally/declared mismatch surfaced
		}
		if done {
			t.Fatal("stream with mismatched tally accepted")
		}
	}
}

func headerFrameLen(buf *bytes.Buffer) int {
	return framePrefixLen + int(binary.LittleEndian.Uint32(buf.Bytes()[0:4]))
}

// TestExecuteBytes runs the in-process wire loop under both codecs.
func TestExecuteBytes(t *testing.T) {
	req := &Request{Algorithm: AlgoEdgeGreedy, Graph: GraphSpec{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}}
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		in, err := c.Encode(req)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ExecuteBytes(t.Context(), c, in, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		var resp Response
		if err := c.Decode(out, &resp); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if resp.Kind != KindEdge || len(resp.Colors) != 4 {
			t.Fatalf("%s: bad response %+v", c.Name(), resp)
		}
	}
}

// TestCodecLookup pins the negotiation helpers.
func TestCodecLookup(t *testing.T) {
	if c, ok := CodecForContentType("application/vnd.distcolor.v1+bin; charset=x"); !ok || c.Name() != "binary" {
		t.Fatalf("binary content type did not resolve: %v %v", c, ok)
	}
	if c, ok := CodecForContentType("application/json"); !ok || c.Name() != "json" {
		t.Fatalf("json content type did not resolve: %v %v", c, ok)
	}
	if _, ok := CodecForContentType("text/plain"); ok {
		t.Fatal("text/plain resolved to a codec")
	}
	if _, ok := CodecByName("binary"); !ok {
		t.Fatal("binary codec not found by name")
	}
	if _, err := CodecBinary.Encode(42); err == nil {
		t.Fatal("binary codec encoded a non-wire type")
	}
	if err := CodecJSON.Decode([]byte("{}"), &struct{}{}); err == nil {
		t.Fatal("json codec decoded into a non-wire type")
	}
}

// TestBinarySmallerAndFaster pins the PR's acceptance criterion on the
// deterministic half: binary encoding of the 100k-vertex §4 pipeline graph
// must stay ≥3x smaller than JSON (sizes are exact and platform-free; the
// ≥5x encode+decode speedup is recorded in EXPERIMENTS.md and tracked by
// BenchmarkWireCodec rather than asserted in a unit test, where it would
// flake on loaded machines).
func TestBinarySmallerThanJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the 100k pipeline graph")
	}
	g, err := gen.NearRegular(100_000, 8, 2017)
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Algorithm: AlgoEdgeGreedy, Graph: Spec(g)}
	jb, err := CodecJSON.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := CodecBinary.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(jb)) / float64(len(bb)); ratio < 3 {
		t.Fatalf("binary is only %.2fx smaller than JSON (%d vs %d bytes), want ≥3x", ratio, len(bb), len(jb))
	}
	var dec Request
	if err := CodecBinary.Decode(bb, &dec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req.Graph.Edges, dec.Graph.Edges) {
		t.Fatal("100k edge list did not round-trip")
	}
}
