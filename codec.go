package distcolor

import (
	"fmt"
)

// This file is the stable wire codec of the library: a JSON-friendly
// Request/Response pair that names every entry point, plus Execute, which
// dispatches a Request to the matching algorithm and verifies the produced
// coloring before returning it. The colord service (internal/service,
// cmd/colord) speaks exactly these types over HTTP; keeping them here makes
// the same codec usable in-process, which is how cmd/colorbench can target
// either a live daemon or the library with one workload description.

// Algorithm names accepted in Request.Algorithm.
const (
	// AlgoEdgeGreedy is the folklore (2Δ−1)-edge-coloring baseline.
	AlgoEdgeGreedy = "edge/greedy"
	// AlgoEdgeStar is the §4 star-partition (2^{x+1}Δ)-edge-coloring
	// (parameter X, default 1).
	AlgoEdgeStar = "edge/star"
	// AlgoEdgeSparse is the adaptive Corollary 5.5 (Δ+o(Δ))-edge-coloring
	// (parameters Arboricity — 0 means "estimate" — and Q).
	AlgoEdgeSparse = "edge/sparse"
	// AlgoEdgeSparse52/53/54x2/54x3 pin a specific Section 5 theorem.
	AlgoEdgeSparse52   = "edge/sparse/thm5.2"
	AlgoEdgeSparse53   = "edge/sparse/thm5.3"
	AlgoEdgeSparse54x2 = "edge/sparse/thm5.4x2"
	AlgoEdgeSparse54x3 = "edge/sparse/thm5.4x3"
	// AlgoVertexDelta1 is the classical deterministic (Δ+1)-vertex-coloring.
	AlgoVertexDelta1 = "vertex/delta1"
	// AlgoVertexCD is the §3 clique-decomposition coloring; the Request must
	// carry the clique cover (Graph.Cliques) and may set X (default 1).
	AlgoVertexCD = "vertex/cd"
)

// Algorithms lists every Request.Algorithm value Execute accepts.
func Algorithms() []string {
	return []string{
		AlgoEdgeGreedy, AlgoEdgeStar,
		AlgoEdgeSparse, AlgoEdgeSparse52, AlgoEdgeSparse53, AlgoEdgeSparse54x2, AlgoEdgeSparse54x3,
		AlgoVertexDelta1, AlgoVertexCD,
	}
}

// GraphSpec is the wire form of a graph: a vertex count and an edge list.
// For AlgoVertexCD it additionally carries the clique cover.
type GraphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
	// Cliques is the clique cover for AlgoVertexCD (each list is one
	// clique's vertices); ignored by every other algorithm.
	Cliques [][]int32 `json:"cliques,omitempty"`
}

// Spec converts a built graph back to its wire form.
func Spec(g *Graph) GraphSpec {
	s := GraphSpec{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for _, e := range g.Edges() {
		s.Edges = append(s.Edges, [2]int{int(e.U), int(e.V)})
	}
	return s
}

// Build validates the spec and constructs the immutable graph. Endpoints
// are range-checked against [0, N) here, before the builder's int32
// narrowing, so out-of-range wire values fail instead of silently wrapping
// onto a different vertex.
func (s GraphSpec) Build() (*Graph, error) {
	b := NewBuilder(s.N)
	for i, e := range s.Edges {
		if e[0] < 0 || e[0] >= s.N || e[1] < 0 || e[1] >= s.N {
			return nil, fmt.Errorf("distcolor: edge %d endpoints {%d,%d} out of range [0,%d)", i, e[0], e[1], s.N)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Request describes one coloring workload in a stable, JSON-serializable
// form.
type Request struct {
	// Algorithm is one of the Algo* constants.
	Algorithm string    `json:"algorithm"`
	Graph     GraphSpec `json:"graph"`
	// X is the recursion-depth parameter of AlgoEdgeStar / AlgoVertexCD
	// (default 1).
	X int `json:"x,omitempty"`
	// Arboricity is the bound fed to the sparse algorithms; 0 means
	// "estimate with ArboricityUpperBound".
	Arboricity int `json:"arboricity,omitempty"`
	// Q is the Section 5 threshold multiplier (0 → default 3).
	Q float64 `json:"q,omitempty"`
	// Parallel selects the goroutine-sharded engine.
	Parallel bool `json:"parallel,omitempty"`
}

// Response is the result of executing a Request. Kind tells whether Colors
// is indexed by edge identifiers or by vertices.
type Response struct {
	// Kind is "edge" or "vertex".
	Kind string `json:"kind"`
	// Algorithm echoes the procedure that actually ran (for the adaptive
	// sparse entry point this is the chosen plan, e.g. "thm5.3").
	Algorithm string  `json:"algorithm"`
	Colors    []int64 `json:"colors"`
	Palette   int64   `json:"palette"`
	Stats     Stats   `json:"stats"`
	// Delta and Arboricity record the structural parameters the run used.
	Delta      int `json:"delta"`
	Arboricity int `json:"arboricity,omitempty"`
}

// Validate checks a Request without running it.
func (r *Request) Validate() error {
	switch r.Algorithm {
	case AlgoEdgeGreedy, AlgoEdgeStar, AlgoEdgeSparse, AlgoEdgeSparse52, AlgoEdgeSparse53,
		AlgoEdgeSparse54x2, AlgoEdgeSparse54x3, AlgoVertexDelta1, AlgoVertexCD:
	default:
		return fmt.Errorf("distcolor: unknown algorithm %q", r.Algorithm)
	}
	if r.Graph.N < 0 {
		return fmt.Errorf("distcolor: negative vertex count %d", r.Graph.N)
	}
	if r.X < 0 {
		return fmt.Errorf("distcolor: negative x %d", r.X)
	}
	if r.Arboricity < 0 {
		return fmt.Errorf("distcolor: negative arboricity %d", r.Arboricity)
	}
	if r.Algorithm == AlgoVertexCD && len(r.Graph.Cliques) == 0 {
		return fmt.Errorf("distcolor: %s requires a clique cover", AlgoVertexCD)
	}
	return nil
}

// x returns the recursion depth with its default.
func (r *Request) x() int {
	if r.X == 0 {
		return 1
	}
	return r.X
}

// Execute runs the Request against the library and verifies the coloring
// before returning; a Response from Execute is always a proper coloring
// within its declared palette. opt supplies execution extras (Observer);
// the Request's own Parallel/Q fields take precedence over opt's.
func Execute(r *Request, opt Options) (*Response, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	g, err := r.Graph.Build()
	if err != nil {
		return nil, err
	}
	return ExecuteOn(r, g, opt)
}

// ExecuteOn is Execute for callers that already built r.Graph (the colord
// service builds it at submission for validation and canonicalization and
// reuses it here); g must be the graph r.Graph describes.
func ExecuteOn(r *Request, g *Graph, opt Options) (*Response, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	opt.Parallel = r.Parallel
	opt.Q = r.Q
	resp := &Response{Delta: g.MaxDegree()}
	var err error

	arb := func() int {
		if r.Arboricity > 0 {
			return r.Arboricity
		}
		return ArboricityUpperBound(g)
	}

	var (
		ec *EdgeColoring
		vc *VertexColoring
	)
	switch r.Algorithm {
	case AlgoEdgeGreedy:
		ec, err = EdgeColorGreedy(g, opt)
	case AlgoEdgeStar:
		ec, err = EdgeColorStar(g, r.x(), opt)
	case AlgoEdgeSparse:
		resp.Arboricity = arb()
		ec, err = EdgeColorSparse(g, resp.Arboricity, opt)
	case AlgoEdgeSparse52:
		resp.Arboricity = arb()
		ec, err = EdgeColorSparseWith(g, resp.Arboricity, SparseHPartition, opt)
	case AlgoEdgeSparse53:
		resp.Arboricity = arb()
		ec, err = EdgeColorSparseWith(g, resp.Arboricity, SparseSqrt, opt)
	case AlgoEdgeSparse54x2:
		resp.Arboricity = arb()
		ec, err = EdgeColorSparseWith(g, resp.Arboricity, SparseRecursive2, opt)
	case AlgoEdgeSparse54x3:
		resp.Arboricity = arb()
		ec, err = EdgeColorSparseWith(g, resp.Arboricity, SparseRecursive3, opt)
	case AlgoVertexDelta1:
		vc, err = VertexColor(g, opt)
	case AlgoVertexCD:
		var cover *CliqueCover
		cover, err = NewCliqueCover(g, r.Graph.Cliques)
		if err == nil {
			vc, err = VertexColorCD(g, cover, r.x(), opt)
		}
	}
	if err != nil {
		return nil, err
	}
	switch {
	case ec != nil:
		if err := CheckEdgeColoring(g, ec.Colors, ec.Palette); err != nil {
			return nil, fmt.Errorf("distcolor: %s produced an invalid coloring: %w", r.Algorithm, err)
		}
		resp.Kind = "edge"
		resp.Algorithm = ec.Algorithm
		resp.Colors = ec.Colors
		resp.Palette = ec.Palette
		resp.Stats = ec.Stats
	case vc != nil:
		if err := CheckVertexColoring(g, vc.Colors, vc.Palette); err != nil {
			return nil, fmt.Errorf("distcolor: %s produced an invalid coloring: %w", r.Algorithm, err)
		}
		resp.Kind = "vertex"
		resp.Algorithm = vc.Algorithm
		resp.Colors = vc.Colors
		resp.Palette = vc.Palette
		resp.Stats = vc.Stats
	}
	return resp, nil
}
