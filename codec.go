package distcolor

import (
	"context"
	"encoding/json"
	"fmt"
	"mime"
)

// This file is the stable wire codec of the library: the
// Request/Response pair, the Codec interface with its JSON implementation
// (the binary implementation lives in codecbin.go, the chunked streaming
// form in codecstream.go), plus Execute, which dispatches a Request
// through the algorithm registry (registry.go). The codec holds no
// per-algorithm knowledge: algorithm names, parameter validation, and
// applicability all come from the registered descriptors, so a newly
// registered algorithm is wire-reachable with no codec changes. The colord
// service (internal/service, cmd/colord) speaks exactly these types over
// HTTP; keeping them here makes the same codec usable in-process, which is
// how cmd/colorbench can target either a live daemon or the library with
// one workload description.
//
// Codec is the single encode/decode surface for the wire types: every
// serialization of a GraphSpec, Request, Response, Coloring, or JobRecord
// — HTTP bodies, the WAL journal, in-process ExecuteBytes — dispatches
// through a Codec, never through raw json.Marshal (`make lint` checks
// this). See DESIGN.md §11 for the binary frame grammar and the streaming
// admission protocol.

// GraphSpec is the wire form of a graph: a vertex count and an edge list.
// For cover-requiring algorithms (vertex/cd) it additionally carries the
// clique cover.
type GraphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
	// Cliques is the clique cover for algorithms registered with
	// NeedsCover (each list is one clique's vertices); ignored by every
	// other algorithm.
	Cliques [][]int32 `json:"cliques,omitempty"`
}

// Spec converts a built graph back to its wire form.
func Spec(g *Graph) GraphSpec {
	s := GraphSpec{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for _, e := range g.Edges() {
		s.Edges = append(s.Edges, [2]int{int(e.U), int(e.V)})
	}
	return s
}

// Build validates the spec and constructs the immutable graph. Endpoints
// are range-checked against [0, N) here, before the builder's int32
// narrowing, so out-of-range wire values fail instead of silently wrapping
// onto a different vertex.
func (s GraphSpec) Build() (*Graph, error) {
	b := NewBuilder(s.N)
	for i, e := range s.Edges {
		if e[0] < 0 || e[0] >= s.N || e[1] < 0 || e[1] >= s.N {
			return nil, fmt.Errorf("distcolor: edge %d endpoints {%d,%d} out of range [0,%d)", i, e[0], e[1], s.N)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Request describes one coloring workload in a stable, JSON-serializable
// form.
type Request struct {
	// Algorithm is a registered algorithm name (see Algorithms, or the
	// colord /v1/algorithms endpoint for the full schemas).
	Algorithm string    `json:"algorithm"`
	Graph     GraphSpec `json:"graph"`
	// Params carries algorithm parameters by schema name, validated
	// strictly against the registered parameter schema (unknown names,
	// NaN, and out-of-range values are rejected). The legacy shorthand
	// fields below overlay it when nonzero.
	Params Params `json:"params,omitempty"`
	// X is the legacy shorthand for Params["x"], the recursion-depth
	// parameter of edge/star and vertex/cd (0 selects the default). Like
	// all shorthand fields it keeps its pre-registry tolerance: an
	// algorithm whose schema has no such parameter ignores it instead of
	// rejecting the request.
	//
	// Deprecated on the wire (but permanently supported): set
	// Params["x"] instead. The colord service answers requests that use
	// any shorthand field with a `Deprecation: true` response header; see
	// the README migration table.
	X int `json:"x,omitempty"`
	// Arboricity is the legacy shorthand for Params["arboricity"] fed to
	// the sparse algorithms; 0 means "estimate with ArboricityUpperBound".
	//
	// Deprecated on the wire (but permanently supported): set
	// Params["arboricity"] instead.
	Arboricity int `json:"arboricity,omitempty"`
	// Q is the legacy shorthand for Params["q"], the Section 5 threshold
	// multiplier (0 selects the default 3).
	//
	// Deprecated on the wire (but permanently supported): set Params["q"]
	// instead.
	Q float64 `json:"q,omitempty"`
	// Parallel selects the goroutine-sharded engine.
	Parallel bool `json:"parallel,omitempty"`
	// DeadlineMS bounds the job's execution wall time in milliseconds
	// (0 = no per-request deadline; the server may still apply its own
	// -job-timeout default). A job that exceeds it terminates in the
	// distinct deadline_exceeded state. On the binary wire the field is
	// flag-gated (flagDeadlineMS): requests without a deadline encode
	// byte-identically to the pre-deadline format, and a deadline-carrying
	// frame fails loudly on decoders that predate the flag.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// params merges the legacy shorthand fields over the Params map into one
// schema-keyed parameter set for algorithm a. Shorthand fields merge only
// when a's schema declares the parameter: pre-registry clients set them on
// requests whose algorithm ignored them (e.g. one batch template swept
// across algorithms), and the stable codec keeps tolerating that. Entries
// of the Params map itself are strict — resolution rejects unknown names.
func (r *Request) params(a Algorithm) Params {
	p := make(Params, len(r.Params)+3)
	for k, v := range r.Params {
		p[k] = v
	}
	merge := func(name string, v float64) {
		if v == 0 {
			return
		}
		if _, ok := a.param(name); ok {
			p[name] = v
		}
	}
	merge("x", float64(r.X))
	merge("arboricity", float64(r.Arboricity))
	merge("q", r.Q)
	return p
}

// ResolvedParams returns the request's parameter set exactly as the
// registry resolves it: the legacy shorthand fields merged over Params,
// schema defaults applied, and clamps performed. Requests that provably
// run identically resolve to equal parameter sets, which is what the
// colord result cache keys on.
func (r *Request) ResolvedParams() (Params, error) {
	a, ok := LookupAlgorithm(r.Algorithm)
	if !ok {
		return nil, &UnknownAlgorithmError{Name: r.Algorithm}
	}
	return a.resolve(r.params(a))
}

// JobRecordSchema versions the persisted job record layout. Bump it when a
// field changes meaning or serialized form; readers must reject records with
// a schema they do not understand rather than guess (the colord write-ahead
// job store does exactly that on replay).
const JobRecordSchema = 1

// JobRecord is the stable persisted form of one service job: what the
// colord write-ahead log journals at submission, on state transitions, and
// at the terminal result. It is defined beside the wire codec because it is
// one — a JobRecord must survive process restarts and version skew exactly
// like a Request on the wire, so it carries an explicit Schema and reuses
// the stable Request/Response types rather than any in-memory job shape.
//
// A journal entry is a partial record merged by ID during replay: the
// submission entry carries Request, later entries carry only the state
// delta, and the terminal entry carries the outcome (Error or Response).
// Compaction condenses a job's entries into one full record.
type JobRecord struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// State is the service-layer lifecycle phase
	// (queued|running|done|failed|canceled), or the journal-only marker
	// "forgotten" recording that the service dropped the job from its
	// bounded retention (replay then drops it too).
	State    string    `json:"state"`
	Request  *Request  `json:"request,omitempty"`
	Error    string    `json:"error,omitempty"`
	Response *Response `json:"response,omitempty"`
	WallMS   int64     `json:"wall_ms,omitempty"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	// Attempts counts execution starts journaled for this job. Replay uses
	// it to quarantine poison jobs: a non-terminal record that already
	// started twice is marked failed instead of re-enqueued, so a job whose
	// handler panics cannot crash-loop the daemon across restarts. On the
	// binary wire the field is flag-gated (flagJobAttempts), keeping
	// attempt-free records byte-identical to the pre-attempts format.
	Attempts int64 `json:"attempts,omitempty"`
}

// Response is the result of executing a Request. Kind tells whether Colors
// is indexed by edge identifiers or by vertices.
type Response struct {
	// Kind is "edge" or "vertex".
	Kind Kind `json:"kind"`
	// Algorithm echoes the procedure that actually ran (for the adaptive
	// sparse entry point this is the chosen plan, e.g. "thm5.3").
	Algorithm string  `json:"algorithm"`
	Colors    []int64 `json:"colors"`
	Palette   int64   `json:"palette"`
	Stats     Stats   `json:"stats"`
	// Delta and Arboricity record the structural parameters the run used.
	Delta      int `json:"delta"`
	Arboricity int `json:"arboricity,omitempty"`
}

// Validate checks a Request without running it: the algorithm must be
// registered, the graph well-formed, and the parameters valid under the
// algorithm's schema.
func (r *Request) Validate() error {
	a, ok := LookupAlgorithm(r.Algorithm)
	if !ok {
		return &UnknownAlgorithmError{Name: r.Algorithm}
	}
	if r.Graph.N < 0 {
		return fmt.Errorf("distcolor: negative vertex count %d", r.Graph.N)
	}
	// Shorthand fields are range-checked even when the algorithm ignores
	// them (pre-registry behavior); schema validation covers the rest.
	if r.X < 0 {
		return fmt.Errorf("distcolor: negative x %d", r.X)
	}
	if r.Arboricity < 0 {
		return fmt.Errorf("distcolor: negative arboricity %d", r.Arboricity)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("distcolor: negative deadline_ms %d", r.DeadlineMS)
	}
	if _, err := a.resolve(r.params(a)); err != nil {
		return err
	}
	if a.NeedsCover && len(r.Graph.Cliques) == 0 {
		return fmt.Errorf("distcolor: %s requires a clique cover", r.Algorithm)
	}
	return nil
}

// Execute runs the Request against the registry and verifies the coloring
// before returning; a Response from Execute is always a proper coloring
// within its declared palette. ctx cancels or deadlines the simulation at
// round granularity. opt supplies execution extras (Observer); the
// Request's own Parallel and parameter fields take precedence over opt's.
func Execute(ctx context.Context, r *Request, opt Options) (*Response, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	g, err := r.Graph.Build()
	if err != nil {
		return nil, err
	}
	return ExecuteOn(ctx, r, g, opt)
}

// ExecuteOn is Execute for callers that already built r.Graph (the colord
// service builds it at submission for validation and canonicalization and
// reuses it here); g must be the graph r.Graph describes.
func ExecuteOn(ctx context.Context, r *Request, g *Graph, opt Options) (*Response, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	a, _ := LookupAlgorithm(r.Algorithm)
	opt.Parallel = r.Parallel
	if a.NeedsCover {
		cover, err := NewCliqueCover(g, r.Graph.Cliques)
		if err != nil {
			return nil, err
		}
		opt.Cover = cover
	}
	col, err := Run(ctx, g, r.Algorithm, r.params(a), opt)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Kind:      col.Kind,
		Algorithm: col.Algorithm,
		Colors:    col.Colors,
		Palette:   col.Palette,
		Stats:     col.Stats,
		Delta:     g.MaxDegree(),
	}
	// Report dynamically resolved structural parameters without knowing
	// which algorithms have them: the resolved parameter set carries the
	// estimate back.
	if arb, ok := col.Params["arboricity"]; ok {
		resp.Arboricity = int(arb)
	}
	return resp, nil
}

// Wire media types. ContentTypeBinary is the negotiation token for the
// CRC-framed binary encoding: a client submits with it as Content-Type and
// asks for binary results by listing it in Accept; JSON stays the default
// for everything else.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/vnd.distcolor.v1+bin"
)

// Codec is the single public encode/decode surface for the wire types:
// *GraphSpec, *Request, *Response, *Coloring, and *JobRecord (Encode also
// accepts the non-pointer forms). Two implementations exist — CodecJSON,
// the historical human-readable encoding, and CodecBinary, the
// length-prefixed CRC-framed encoding (codecbin.go) — and everything that
// serializes a wire type (HTTP bodies, the WAL journal, ExecuteBytes)
// dispatches through one of them. Both are stateless and safe for
// concurrent use.
type Codec interface {
	// Name is the stable short identifier: "json" or "binary".
	Name() string
	// ContentType is the HTTP media type this codec negotiates under.
	ContentType() string
	// Encode serializes one wire value.
	Encode(v any) ([]byte, error)
	// Decode parses data into the pointed-to wire value. The binary codec
	// rejects trailing bytes, corrupt frames, and version/feature flags it
	// does not know.
	Decode(data []byte, v any) error
}

// CodecJSON encodes the wire types as the stable JSON the service has
// always spoken; golden fixtures under testdata/codec pin the exact shape.
var CodecJSON Codec = jsonCodec{}

// CodecBinary encodes the wire types as length-prefixed, CRC-framed binary
// records (see codecbin.go for the frame grammar).
var CodecBinary Codec = binaryCodec{}

// CodecByName resolves "json" or "binary".
func CodecByName(name string) (Codec, bool) {
	switch name {
	case CodecJSON.Name():
		return CodecJSON, true
	case CodecBinary.Name():
		return CodecBinary, true
	}
	return nil, false
}

// CodecForContentType resolves a Content-Type (or one Accept alternative)
// header value, parameters ignored; ok is false for media types neither
// codec speaks.
func CodecForContentType(contentType string) (Codec, bool) {
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		return nil, false
	}
	switch mt {
	case ContentTypeJSON:
		return CodecJSON, true
	case ContentTypeBinary:
		return CodecBinary, true
	}
	return nil, false
}

// jsonCodec adapts encoding/json to the Codec contract. It is restricted
// to the wire types on purpose: the restriction is what lets `make lint`
// state "wire types serialize only through a Codec" and mean it.
type jsonCodec struct{}

func (jsonCodec) Name() string        { return "json" }
func (jsonCodec) ContentType() string { return ContentTypeJSON }

func (jsonCodec) Encode(v any) ([]byte, error) {
	if _, err := wireKindOf(v); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

func (jsonCodec) Decode(data []byte, v any) error {
	if _, err := wireKindOf(v); err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// wireKindOf maps a wire value to its binary frame kind and doubles as the
// codecs' type gate.
func wireKindOf(v any) (byte, error) {
	switch v.(type) {
	case *GraphSpec, GraphSpec:
		return kindGraphSpec, nil
	case *Request, Request:
		return kindRequest, nil
	case *Response, Response:
		return kindResponse, nil
	case *Coloring, Coloring:
		return kindColoring, nil
	case *JobRecord, JobRecord:
		return kindJobRecord, nil
	}
	return 0, fmt.Errorf("distcolor: %T is not a wire type (want *GraphSpec, *Request, *Response, *Coloring, or *JobRecord)", v)
}

// ExecuteBytes is Execute behind a Codec: it decodes an encoded Request,
// runs it, and returns the encoded Response — the in-process form of the
// service's wire loop, usable with either codec.
func ExecuteBytes(ctx context.Context, c Codec, data []byte, opt Options) ([]byte, error) {
	var req Request
	if err := c.Decode(data, &req); err != nil {
		return nil, err
	}
	resp, err := Execute(ctx, &req, opt)
	if err != nil {
		return nil, err
	}
	return c.Encode(resp)
}
