// Package distcolor is a deterministic distributed graph-coloring library:
// a from-scratch Go reproduction of Barenboim, Elkin and Maimon,
// "Deterministic Distributed (Δ+o(Δ))-Edge-Coloring, and Vertex-Coloring of
// Graphs with Bounded Diversity" (PODC 2017).
//
// Every algorithm runs as genuine node programs on a synchronous
// message-passing simulator of the LOCAL model; reported Stats carry the
// executed communication rounds and message counts.
//
// The package is organized around a self-describing algorithm registry
// (registry.go): every algorithm — the §4 star partition, the §5 sparse
// family, the §3 CD-coloring, and the Δ+1 / 2Δ−1 baselines — registers one
// descriptor carrying its name, kind (edge or vertex), declared palette
// formula, and parameter schema with defaults and bounds (algorithms.go).
// The primary entry point is context-first and uniform across the family:
//
//	col, err := distcolor.Run(ctx, g, "edge/sparse",
//	        distcolor.Params{"arboricity": 3}, distcolor.Options{})
//
// Run resolves parameters against the schema, checks applicability,
// executes on the simulator (ctx cancels or times out the run at round
// granularity), verifies the produced coloring, and returns a unified
// Coloring. The legacy one-shot entry points (EdgeColorStar,
// EdgeColorSparse, VertexColor, VertexColorCD, …) remain as thin wrappers
// over Run.
//
// The package also defines the stable wire codec (Request/Response and
// Execute in codec.go) spoken by the colord coloring service: cmd/colord
// serves every registered algorithm over HTTP behind a job queue, a worker
// pool, and a content-addressed result cache keyed by canonical graph
// hashes (CanonicalHash), with per-round streaming traces powered by
// Options.Observer and registry discovery at /v1/algorithms. See
// internal/service, and README.md for a curl quickstart.
//
// See DESIGN.md for the system inventory (§6 covers the service) and
// EXPERIMENTS.md for the paper-versus-measured record of every table and
// figure.
package distcolor

import (
	"context"
	"fmt"
	"io"

	"repro/internal/arbor"
	"repro/internal/cliques"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/vc"
	"repro/internal/verify"
)

// Re-exported core types, so downstream users can build graphs and covers
// without reaching into internal packages.
type (
	// Graph is an immutable simple undirected graph with stable edge IDs.
	Graph = graph.Graph
	// Builder accumulates edges for a Graph.
	Builder = graph.Builder
	// Hypergraph is a c-uniform hypergraph (diversity-c instances).
	Hypergraph = graph.Hypergraph
	// CliqueCover is a consistent clique identification (§2, footnote 3).
	CliqueCover = cliques.Cover
	// Stats reports executed rounds and messages of a distributed run.
	Stats = sim.Stats
	// Plan names an adaptive parameterization choice (Corollary 5.5).
	Plan = arbor.Plan
	// RoundEvent is one executed simulator round, as delivered to
	// Options.Observer (see internal/sim).
	RoundEvent = sim.RoundEvent
	// Bandwidth is the optional CONGEST bandwidth accountant attachable via
	// Options.Bandwidth (see internal/sim/bandwidth.go): it histograms each
	// round's hottest-edge message size and counts rounds exceeding its cap.
	Bandwidth = sim.Bandwidth
)

// CongestCapBits returns the CONGEST bandwidth cap (bits per edge per
// round) this repository audits against for an n-vertex network.
func CongestCapBits(n int) int64 { return sim.CongestCapBits(n) }

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ReadEdgeList parses a whitespace edge-list (see internal/graph).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Options selects execution parameters shared by all entry points.
type Options struct {
	// Parallel runs node programs on the goroutine-sharded engine instead
	// of the sequential one. Results are identical; wall-clock differs.
	Parallel bool
	// Q is the Section 5 threshold multiplier used by the legacy sparse
	// wrappers (EdgeColorSparse, EdgeColorSparseWith): 0 selects the
	// default 3, positive values below 2.05 run as 2.05, and NaN or
	// negative values are rejected with *ParamError. Run callers pass
	// Params{"q": …} instead — see the "q" entry of the edge/sparse
	// parameter schema for the authoritative contract.
	Q float64
	// Observer, when non-nil, receives a RoundEvent after every executed
	// round of every constituent distributed execution (composed algorithms
	// run many). It is purely for tracing: to abort a long run, cancel the
	// context passed to Run (the legacy Observer-error cancellation is
	// gone).
	Observer func(RoundEvent)
	// Cover supplies the clique cover required by algorithms registered
	// with NeedsCover (vertex/cd). The one-shot VertexColorCD wrapper fills
	// it from its argument; wire requests carry it as GraphSpec.Cliques.
	Cover *CliqueCover
	// Bandwidth, when non-nil, accounts every round of every constituent
	// execution against the accountant's CONGEST cap (violations are
	// recorded in the accountant and summed into Stats.CongestViolations,
	// never enforced). Purely observational, like Observer.
	Bandwidth *Bandwidth
}

func (o Options) engine() sim.Exec {
	base := sim.Sequential
	if o.Parallel {
		base = sim.Parallel
	}
	return sim.Instrumented(base, o.Observer, o.Bandwidth)
}

func (o Options) vc() vc.Options { return vc.Options{Exec: o.engine()} }

// EdgeColoring is the result of a distributed edge-coloring run. It is the
// edge-kind view of the unified Coloring returned by Run, kept for the
// legacy one-shot entry points.
type EdgeColoring struct {
	// Colors is indexed by the graph's edge identifiers.
	Colors []int64
	// Palette is the guaranteed bound: all colors are < Palette.
	Palette int64
	// Stats reports the executed rounds and messages.
	Stats Stats
	// Algorithm names the procedure that produced the coloring.
	Algorithm string
}

// VertexColoring is the result of a distributed vertex-coloring run (the
// vertex-kind view of Coloring).
type VertexColoring struct {
	Colors    []int64
	Palette   int64
	Stats     Stats
	Algorithm string
}

// runEdge adapts Run for the legacy edge-coloring wrappers.
func runEdge(g *Graph, algo string, p Params, opt Options) (*EdgeColoring, error) {
	//distcolor:ignore ctxfirst legacy pre-context wrapper keeps the v0 signature; ctx-aware callers use Run
	col, err := Run(context.Background(), g, algo, p, opt)
	if err != nil {
		return nil, err
	}
	return &EdgeColoring{Colors: col.Colors, Palette: col.Palette, Stats: col.Stats, Algorithm: col.Algorithm}, nil
}

// runVertex adapts Run for the legacy vertex-coloring wrappers.
func runVertex(g *Graph, algo string, p Params, opt Options) (*VertexColoring, error) {
	//distcolor:ignore ctxfirst legacy pre-context wrapper keeps the v0 signature; ctx-aware callers use Run
	col, err := Run(context.Background(), g, algo, p, opt)
	if err != nil {
		return nil, err
	}
	return &VertexColoring{Colors: col.Colors, Palette: col.Palette, Stats: col.Stats, Algorithm: col.Algorithm}, nil
}

// EdgeColorGreedy computes the classical distributed (2Δ−1)-edge-coloring
// (the folklore baseline the paper improves on). It wraps Run(AlgoEdgeGreedy).
func EdgeColorGreedy(g *Graph, opt Options) (*EdgeColoring, error) {
	return runEdge(g, AlgoEdgeGreedy, nil, opt)
}

// EdgeColorStar computes the (2^{x+1}Δ)-edge-coloring of Theorem 4.1 with
// x ≥ 1 star-partition levels (x=1: 4Δ colors). Requires Δ ≥ 2^{x+1}. It
// wraps Run(AlgoEdgeStar).
func EdgeColorStar(g *Graph, x int, opt Options) (*EdgeColoring, error) {
	return runEdge(g, AlgoEdgeStar, Params{"x": float64(x)}, opt)
}

// EdgeColorSparse computes a (Δ+o(Δ))-edge-coloring for a graph with
// arboricity at most a (Corollary 5.5): it selects the Section 5
// parameterization with the smallest palette for this (Δ, a) and runs it.
// The chosen plan is reported in the Algorithm field. It wraps
// Run(AlgoEdgeSparse).
func EdgeColorSparse(g *Graph, a int, opt Options) (*EdgeColoring, error) {
	return runEdge(g, AlgoEdgeSparse, Params{"arboricity": float64(a), "q": opt.Q}, opt)
}

// SparseAlgorithm selects a fixed Section 5 procedure for
// EdgeColorSparseWith.
type SparseAlgorithm int

const (
	// SparseHPartition is Theorem 5.2: Δ+O(a) colors, O(a·log n) rounds.
	SparseHPartition SparseAlgorithm = iota
	// SparseSqrt is Theorem 5.3: Δ+O(√(Δa))+O(a) colors, O(√a·log n) rounds.
	SparseSqrt
	// SparseRecursive2 and SparseRecursive3 are Theorem 5.4 with x=2, 3.
	SparseRecursive2
	SparseRecursive3
)

// sparseAlgoName maps the legacy enum to registry names.
var sparseAlgoName = map[SparseAlgorithm]string{
	SparseHPartition: AlgoEdgeSparse52,
	SparseSqrt:       AlgoEdgeSparse53,
	SparseRecursive2: AlgoEdgeSparse54x2,
	SparseRecursive3: AlgoEdgeSparse54x3,
}

// EdgeColorSparseWith runs a specific Section 5 algorithm. It wraps Run.
func EdgeColorSparseWith(g *Graph, a int, alg SparseAlgorithm, opt Options) (*EdgeColoring, error) {
	name, ok := sparseAlgoName[alg]
	if !ok {
		return nil, fmt.Errorf("distcolor: unknown sparse algorithm %d", alg)
	}
	return runEdge(g, name, Params{"arboricity": float64(a), "q": opt.Q}, opt)
}

// VertexColor computes the classical deterministic (Δ+1)-vertex-coloring
// (the paper's black box, in our Linial+KW realization). It wraps
// Run(AlgoVertexDelta1).
func VertexColor(g *Graph, opt Options) (*VertexColoring, error) {
	return runVertex(g, AlgoVertexDelta1, nil, opt)
}

// VertexColorCD computes the (D^{x+1}·S)-vertex-coloring of Theorem 3.3(i)
// for a graph with the given clique cover (D = cover diversity, S = max
// clique size), using x ≥ 1 clique-decomposition levels and the parameter
// choice t = ⌊S^{1/(x+1)}⌋. It wraps Run(AlgoVertexCD).
func VertexColorCD(g *Graph, cover *CliqueCover, x int, opt Options) (*VertexColoring, error) {
	opt.Cover = cover
	return runVertex(g, AlgoVertexCD, Params{"x": float64(x)}, opt)
}

// LineCover builds the line graph of g together with its canonical
// diversity-2 clique cover and the map from line-graph vertices to g's
// edge identifiers. Vertex-coloring the result edge-colors g.
func LineCover(g *Graph) (*Graph, *CliqueCover, []int32, error) {
	lg := graph.LineGraph(g)
	cov, err := cliques.FromLineGraph(lg)
	if err != nil {
		return nil, nil, nil, err
	}
	return lg.L, cov, lg.EdgeOf, nil
}

// NewHypergraph validates a c-uniform hypergraph.
func NewHypergraph(nVert, rank int, edges [][]int) (*Hypergraph, error) {
	return graph.NewHypergraph(nVert, rank, edges)
}

// HypergraphLineCover builds the line graph of a c-uniform hypergraph with
// its canonical diversity-c cover.
func HypergraphLineCover(h *Hypergraph) (*Graph, *CliqueCover, error) {
	lg := h.LineGraph()
	var lists [][]int32
	for _, cl := range lg.Cliques {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	cov, err := cliques.NewCover(lg.L, lists)
	if err != nil {
		return nil, nil, err
	}
	return lg.L, cov, nil
}

// NewCliqueCover validates a clique cover for g.
func NewCliqueCover(g *Graph, cliqueLists [][]int32) (*CliqueCover, error) {
	return cliques.NewCover(g, cliqueLists)
}

// CheckEdgeColoring verifies a proper edge coloring within a palette.
func CheckEdgeColoring(g *Graph, colors []int64, palette int64) error {
	return verify.EdgeColoring(g, colors, palette)
}

// CheckVertexColoring verifies a proper vertex coloring within a palette.
func CheckVertexColoring(g *Graph, colors []int64, palette int64) error {
	return verify.VertexColoring(g, colors, palette)
}

// ArboricityUpperBound estimates a(G) from the degeneracy (within 2× of the
// truth) for callers who do not know their graph's arboricity.
func ArboricityUpperBound(g *Graph) int { return graph.ArboricityUpperBound(g) }

// CanonicalHash returns a content address for g's structure: isomorphic
// relabelings of the same graph hash equal (up to the WL-hard ties noted in
// internal/graph), distinct structures hash differently. The colord result
// cache keys on it.
func CanonicalHash(g *Graph) string { return graph.CanonicalHash(g) }

// CanonicalLabeling returns the canonical vertex relabeling behind
// CanonicalHash (perm[v] = canonical index of v).
func CanonicalLabeling(g *Graph) []int32 { return graph.CanonicalLabeling(g) }

// SparsePlans lists the candidate Section 5 parameterizations for (Δ, a)
// with their declared palettes, as considered by EdgeColorSparse.
func SparsePlans(delta, a int) []Plan { return arbor.Plans(delta, a) }
