// Package distcolor is a deterministic distributed graph-coloring library:
// a from-scratch Go reproduction of Barenboim, Elkin and Maimon,
// "Deterministic Distributed (Δ+o(Δ))-Edge-Coloring, and Vertex-Coloring of
// Graphs with Bounded Diversity" (PODC 2017).
//
// Every algorithm runs as genuine node programs on a synchronous
// message-passing simulator of the LOCAL model; reported Stats carry the
// executed communication rounds and message counts. The headline entry
// points are
//
//   - EdgeColorStar: (2^{x+1}Δ)-edge-coloring via star partitions (§4,
//     Theorem 4.1) — 4Δ colors at x=1, 8Δ at x=2, …
//   - EdgeColorSparse: (Δ+o(Δ))-edge-coloring for graphs whose arboricity
//     is bounded away from Δ (§5, Theorems 5.2–5.4, Corollary 5.5).
//   - VertexColorCD: (D^{x+1}·S)-vertex-coloring of bounded-diversity
//     graphs via clique decomposition (§§2–3, Algorithm 1, Theorem 3.3).
//   - VertexColor: the classical deterministic (Δ+1)-coloring used as the
//     black box (Linial + Kuhn–Wattenhofer).
//
// Beyond the one-shot entry points, the package defines the stable wire
// codec (Request/Response and Execute in codec.go) spoken by the colord
// coloring service: cmd/colord serves these algorithms over HTTP behind a
// job queue, a worker pool, and a content-addressed result cache keyed by
// canonical graph hashes (CanonicalHash), with per-round streaming traces
// powered by Options.Observer. See internal/service, and README.md for a
// curl quickstart (submit a graph, poll status, fetch the colored result).
//
// See DESIGN.md for the system inventory (§6 covers the service) and
// EXPERIMENTS.md for the paper-versus-measured record of every table and
// figure.
package distcolor

import (
	"fmt"
	"io"

	"repro/internal/arbor"
	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/vc"
	"repro/internal/verify"
)

// Re-exported core types, so downstream users can build graphs and covers
// without reaching into internal packages.
type (
	// Graph is an immutable simple undirected graph with stable edge IDs.
	Graph = graph.Graph
	// Builder accumulates edges for a Graph.
	Builder = graph.Builder
	// Hypergraph is a c-uniform hypergraph (diversity-c instances).
	Hypergraph = graph.Hypergraph
	// CliqueCover is a consistent clique identification (§2, footnote 3).
	CliqueCover = cliques.Cover
	// Stats reports executed rounds and messages of a distributed run.
	Stats = sim.Stats
	// Plan names an adaptive parameterization choice (Corollary 5.5).
	Plan = arbor.Plan
	// RoundEvent is one executed simulator round, as delivered to
	// Options.Observer (see internal/sim).
	RoundEvent = sim.RoundEvent
)

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ReadEdgeList parses a whitespace edge-list (see internal/graph).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Options selects execution parameters shared by all entry points.
type Options struct {
	// Parallel runs node programs on the goroutine-sharded engine instead
	// of the sequential one. Results are identical; wall-clock differs.
	Parallel bool
	// Q is the Section 5 threshold multiplier (default 3; clamped ≥ 2.05).
	Q float64
	// Observer, when non-nil, receives a RoundEvent after every executed
	// round of every constituent distributed execution (composed algorithms
	// run many). Returning a non-nil error from the observer aborts the run
	// with that error — the cancellation mechanism for long jobs.
	Observer func(RoundEvent) error
}

func (o Options) engine() sim.Exec {
	base := sim.Sequential
	if o.Parallel {
		base = sim.Parallel
	}
	return sim.Observed(base, o.Observer)
}

func (o Options) vc() vc.Options { return vc.Options{Exec: o.engine()} }

// EdgeColoring is the result of a distributed edge-coloring run.
type EdgeColoring struct {
	// Colors is indexed by the graph's edge identifiers.
	Colors []int64
	// Palette is the guaranteed bound: all colors are < Palette.
	Palette int64
	// Stats reports the executed rounds and messages.
	Stats Stats
	// Algorithm names the procedure that produced the coloring.
	Algorithm string
}

// VertexColoring is the result of a distributed vertex-coloring run.
type VertexColoring struct {
	Colors    []int64
	Palette   int64
	Stats     Stats
	Algorithm string
}

// EdgeColorGreedy computes the classical distributed (2Δ−1)-edge-coloring
// (the folklore baseline the paper improves on).
func EdgeColorGreedy(g *Graph, opt Options) (*EdgeColoring, error) {
	res, err := vc.EdgeColor(g, nil, vc.EdgeIDBound(g), opt.vc())
	if err != nil {
		return nil, err
	}
	return &EdgeColoring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: "2Δ−1"}, nil
}

// EdgeColorStar computes the (2^{x+1}Δ)-edge-coloring of Theorem 4.1 with
// x ≥ 1 star-partition levels (x=1: 4Δ colors). Requires Δ ≥ 2^{x+1}.
func EdgeColorStar(g *Graph, x int, opt Options) (*EdgeColoring, error) {
	t, err := star.ChooseT(g.MaxDegree(), x)
	if err != nil {
		return nil, err
	}
	res, err := star.EdgeColor(g, t, x, star.Options{Exec: opt.engine(), VC: opt.vc()})
	if err != nil {
		return nil, err
	}
	return &EdgeColoring{
		Colors: res.Colors, Palette: res.Palette, Stats: res.Stats,
		Algorithm: fmt.Sprintf("star-partition/x=%d", x),
	}, nil
}

// EdgeColorSparse computes a (Δ+o(Δ))-edge-coloring for a graph with
// arboricity at most a (Corollary 5.5): it selects the Section 5
// parameterization with the smallest palette for this (Δ, a) and runs it.
// The chosen plan is reported in the Algorithm field.
func EdgeColorSparse(g *Graph, a int, opt Options) (*EdgeColoring, error) {
	res, plan, err := arbor.ColorAdaptive(g, a, arbor.Options{Exec: opt.engine(), VC: opt.vc(), Q: opt.Q})
	if err != nil {
		return nil, err
	}
	return &EdgeColoring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: plan.Name}, nil
}

// SparseAlgorithm selects a fixed Section 5 procedure for
// EdgeColorSparseWith.
type SparseAlgorithm int

const (
	// SparseHPartition is Theorem 5.2: Δ+O(a) colors, O(a·log n) rounds.
	SparseHPartition SparseAlgorithm = iota
	// SparseSqrt is Theorem 5.3: Δ+O(√(Δa))+O(a) colors, O(√a·log n) rounds.
	SparseSqrt
	// SparseRecursive2 and SparseRecursive3 are Theorem 5.4 with x=2, 3.
	SparseRecursive2
	SparseRecursive3
)

// EdgeColorSparseWith runs a specific Section 5 algorithm.
func EdgeColorSparseWith(g *Graph, a int, alg SparseAlgorithm, opt Options) (*EdgeColoring, error) {
	aOpt := arbor.Options{Exec: opt.engine(), VC: opt.vc(), Q: opt.Q}
	var (
		res  *arbor.Result
		name string
		err  error
	)
	switch alg {
	case SparseHPartition:
		res, err = arbor.ColorHPartition(g, a, aOpt)
		name = "thm5.2"
	case SparseSqrt:
		res, err = arbor.ColorSqrt(g, a, aOpt)
		name = "thm5.3"
	case SparseRecursive2:
		res, err = arbor.ColorRecursive(g, a, 2, aOpt)
		name = "thm5.4/x=2"
	case SparseRecursive3:
		res, err = arbor.ColorRecursive(g, a, 3, aOpt)
		name = "thm5.4/x=3"
	default:
		return nil, fmt.Errorf("distcolor: unknown sparse algorithm %d", alg)
	}
	if err != nil {
		return nil, err
	}
	return &EdgeColoring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: name}, nil
}

// VertexColor computes the classical deterministic (Δ+1)-vertex-coloring
// (the paper's black box, in our Linial+KW realization).
func VertexColor(g *Graph, opt Options) (*VertexColoring, error) {
	res, err := vc.Delta1(sim.NewTopology(g), int64(g.N()), opt.vc())
	if err != nil {
		return nil, err
	}
	return &VertexColoring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: "Δ+1"}, nil
}

// VertexColorCD computes the (D^{x+1}·S)-vertex-coloring of Theorem 3.3(i)
// for a graph with the given clique cover (D = cover diversity, S = max
// clique size), using x ≥ 1 clique-decomposition levels and the parameter
// choice t = ⌊S^{1/(x+1)}⌋.
func VertexColorCD(g *Graph, cover *CliqueCover, x int, opt Options) (*VertexColoring, error) {
	t := cd.ChooseT(cover.MaxCliqueSize(), x)
	res, err := cd.Color(g, cover, t, x, cd.Options{Exec: opt.engine(), VC: opt.vc()})
	if err != nil {
		return nil, err
	}
	return &VertexColoring{
		Colors: res.Colors, Palette: res.Palette, Stats: res.Stats,
		Algorithm: fmt.Sprintf("cd-coloring/x=%d", x),
	}, nil
}

// LineCover builds the line graph of g together with its canonical
// diversity-2 clique cover and the map from line-graph vertices to g's
// edge identifiers. Vertex-coloring the result edge-colors g.
func LineCover(g *Graph) (*Graph, *CliqueCover, []int32, error) {
	lg := graph.LineGraph(g)
	cov, err := cliques.FromLineGraph(lg)
	if err != nil {
		return nil, nil, nil, err
	}
	return lg.L, cov, lg.EdgeOf, nil
}

// NewHypergraph validates a c-uniform hypergraph.
func NewHypergraph(nVert, rank int, edges [][]int) (*Hypergraph, error) {
	return graph.NewHypergraph(nVert, rank, edges)
}

// HypergraphLineCover builds the line graph of a c-uniform hypergraph with
// its canonical diversity-c cover.
func HypergraphLineCover(h *Hypergraph) (*Graph, *CliqueCover, error) {
	lg := h.LineGraph()
	var lists [][]int32
	for _, cl := range lg.Cliques {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	cov, err := cliques.NewCover(lg.L, lists)
	if err != nil {
		return nil, nil, err
	}
	return lg.L, cov, nil
}

// NewCliqueCover validates a clique cover for g.
func NewCliqueCover(g *Graph, cliqueLists [][]int32) (*CliqueCover, error) {
	return cliques.NewCover(g, cliqueLists)
}

// CheckEdgeColoring verifies a proper edge coloring within a palette.
func CheckEdgeColoring(g *Graph, colors []int64, palette int64) error {
	return verify.EdgeColoring(g, colors, palette)
}

// CheckVertexColoring verifies a proper vertex coloring within a palette.
func CheckVertexColoring(g *Graph, colors []int64, palette int64) error {
	return verify.VertexColoring(g, colors, palette)
}

// ArboricityUpperBound estimates a(G) from the degeneracy (within 2× of the
// truth) for callers who do not know their graph's arboricity.
func ArboricityUpperBound(g *Graph) int { return graph.ArboricityUpperBound(g) }

// CanonicalHash returns a content address for g's structure: isomorphic
// relabelings of the same graph hash equal (up to the WL-hard ties noted in
// internal/graph), distinct structures hash differently. The colord result
// cache keys on it.
func CanonicalHash(g *Graph) string { return graph.CanonicalHash(g) }

// CanonicalLabeling returns the canonical vertex relabeling behind
// CanonicalHash (perm[v] = canonical index of v).
func CanonicalLabeling(g *Graph) []int32 { return graph.CanonicalLabeling(g) }

// SparsePlans lists the candidate Section 5 parameterizations for (Δ, a)
// with their declared palettes, as considered by EdgeColorSparse.
func SparsePlans(delta, a int) []Plan { return arbor.Plans(delta, a) }
