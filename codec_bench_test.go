package distcolor

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

// BenchmarkWireCodec measures encode/decode of the 100k-vertex pipeline
// request under both codecs. CI runs it on pull requests and publishes a
// benchstat comparison of the json vs binary columns (see
// .github/workflows/ci.yml); `make bench-codec` runs it locally.
func BenchmarkWireCodec(b *testing.B) {
	g, err := gen.NearRegular(100_000, 8, 2017)
	if err != nil {
		b.Fatal(err)
	}
	req := &Request{Algorithm: AlgoEdgeSparse, Graph: Spec(g), Params: Params{"arboricity": 8}}
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		data, err := c.Encode(req)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("encode/%s", c.Name()), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("decode/%s", c.Name()), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var out Request
				if err := c.Decode(data, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
