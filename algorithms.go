package distcolor

// This file registers the paper's algorithm family. Each algorithm is one
// self-contained descriptor: adding a future variant (another Section 5
// parameterization, a fewer-colors edge coloring, …) is one
// RegisterAlgorithm call — the codec, the colord service, /v1/algorithms,
// and the CLIs pick it up with no further edits.

import (
	"context"
	"fmt"

	"repro/internal/arbor"
	"repro/internal/cd"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/vc"
)

// Algorithm names accepted by Run and Request.Algorithm.
const (
	// AlgoEdgeGreedy is the folklore (2Δ−1)-edge-coloring baseline.
	AlgoEdgeGreedy = "edge/greedy"
	// AlgoEdgeStar is the §4 star-partition (2^{x+1}Δ)-edge-coloring
	// (parameter x, default 1).
	AlgoEdgeStar = "edge/star"
	// AlgoEdgeSparse is the adaptive Corollary 5.5 (Δ+o(Δ))-edge-coloring
	// (parameters arboricity — 0 means "estimate" — and q).
	AlgoEdgeSparse = "edge/sparse"
	// AlgoEdgeSparse52/53/54x2/54x3 pin a specific Section 5 theorem.
	AlgoEdgeSparse52   = "edge/sparse/thm5.2"
	AlgoEdgeSparse53   = "edge/sparse/thm5.3"
	AlgoEdgeSparse54x2 = "edge/sparse/thm5.4x2"
	AlgoEdgeSparse54x3 = "edge/sparse/thm5.4x3"
	// AlgoVertexDelta1 is the classical deterministic (Δ+1)-vertex-coloring.
	AlgoVertexDelta1 = "vertex/delta1"
	// AlgoVertexCD is the §3 clique-decomposition coloring; it needs a
	// clique cover (Options.Cover in-process, GraphSpec.Cliques on the
	// wire) and takes x (default 1).
	AlgoVertexCD = "vertex/cd"
)

// Shared parameter schemas. Zero values select the default (matching the
// wire codec's omitempty semantics).
var (
	paramX = ParamSpec{
		Name: "x", Type: "int", Default: 1, Min: 1, Max: 30,
		Doc: "recursion depth (levels of star partition / clique decomposition)",
	}
	paramArboricity = ParamSpec{
		Name: "arboricity", Type: "int", Default: 0, Min: 1, Max: 1 << 30,
		Doc: "arboricity bound a(G); 0 (the default) estimates it from the degeneracy",
	}
	// paramQ documents the Section 5 threshold multiplier contract: the
	// default is 3, NaN and negative values are rejected, and positive
	// values below 2.05 are clamped up to 2.05 (θ = ⌈q·a⌉ needs q > 2 for
	// logarithmically many H-partition parts; 2.05 keeps the peeling fast).
	paramQ = ParamSpec{
		Name: "q", Type: "float", Default: 3, Min: 0, Max: 1e9, ClampMin: 2.05,
		Doc: "H-partition threshold multiplier (θ = ⌈q·a⌉); positive values below 2.05 are clamped up to 2.05",
	}
)

// arbOf resolves the arboricity parameter against the graph: an absent (or
// zero) value estimates from the degeneracy, and the resolved value is
// written back so callers see it in Coloring.Params.
func arbOf(g *Graph, p Params) int {
	a := int(p["arboricity"])
	if a <= 0 {
		a = ArboricityUpperBound(g)
		p["arboricity"] = float64(a)
	}
	return a
}

// sparseAlgorithm registers one member of the Section 5 family.
func sparseAlgorithm(name, doc, palette string, run func(ctx context.Context, g *Graph, a int, o arbor.Options) (*arbor.Result, string, error)) Algorithm {
	return Algorithm{
		Name: name, Kind: KindEdge, Doc: doc, Palette: palette,
		Params: []ParamSpec{paramArboricity, paramQ},
		Run: func(ctx context.Context, g *Graph, p Params, opt Options) (*Coloring, error) {
			a := arbOf(g, p)
			res, ran, err := run(ctx, g, a, arbor.Options{Exec: opt.engine(), VC: opt.vc(), Q: p["q"]})
			if err != nil {
				return nil, err
			}
			return &Coloring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: ran}, nil
		},
	}
}

func init() {
	RegisterAlgorithm(Algorithm{
		Name: AlgoEdgeGreedy, Kind: KindEdge,
		Doc:     "classical distributed (2Δ−1)-edge-coloring (the folklore baseline)",
		Palette: "2Δ−1",
		Run: func(ctx context.Context, g *Graph, p Params, opt Options) (*Coloring, error) {
			res, err := vc.EdgeColor(ctx, g, nil, vc.EdgeIDBound(g), opt.vc())
			if err != nil {
				return nil, err
			}
			return &Coloring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: "2Δ−1"}, nil
		},
	})

	RegisterAlgorithm(Algorithm{
		Name: AlgoEdgeStar, Kind: KindEdge,
		Doc:     "§4 star-partition edge coloring (Theorem 4.1): 4Δ colors at x=1, 8Δ at x=2, …",
		Palette: "2^{x+1}·Δ",
		Params:  []ParamSpec{paramX},
		Applicable: func(g *Graph, p Params) error {
			_, err := star.ChooseT(g.MaxDegree(), int(p["x"]))
			return err
		},
		Run: func(ctx context.Context, g *Graph, p Params, opt Options) (*Coloring, error) {
			x := int(p["x"])
			t, err := star.ChooseT(g.MaxDegree(), x)
			if err != nil {
				return nil, err
			}
			res, err := star.EdgeColor(ctx, g, t, x, star.Options{Exec: opt.engine(), VC: opt.vc()})
			if err != nil {
				return nil, err
			}
			return &Coloring{
				Colors: res.Colors, Palette: res.Palette, Stats: res.Stats,
				Algorithm: fmt.Sprintf("star-partition/x=%d", x),
			}, nil
		},
	})

	RegisterAlgorithm(sparseAlgorithm(AlgoEdgeSparse,
		"adaptive (Δ+o(Δ))-edge-coloring (Corollary 5.5): runs the Section 5 plan with the smallest declared palette for this (Δ, a)",
		"Δ+o(Δ) (best Section 5 plan)",
		func(ctx context.Context, g *Graph, a int, o arbor.Options) (*arbor.Result, string, error) {
			res, plan, err := arbor.ColorAdaptive(ctx, g, a, o)
			return res, plan.Name, err
		}))
	RegisterAlgorithm(sparseAlgorithm(AlgoEdgeSparse52,
		"Theorem 5.2: Δ+O(a) colors in O(a·log n) rounds via H-partition",
		"Δ+θ−1 + 2θ−1, θ=⌈q·a⌉",
		func(ctx context.Context, g *Graph, a int, o arbor.Options) (*arbor.Result, string, error) {
			res, err := arbor.ColorHPartition(ctx, g, a, o)
			return res, "thm5.2", err
		}))
	RegisterAlgorithm(sparseAlgorithm(AlgoEdgeSparse53,
		"Theorem 5.3: Δ+O(√(Δa))+O(a) colors in O(√a·log n) rounds via orientation connectors",
		"Δ+O(√(Δa))+O(a)",
		func(ctx context.Context, g *Graph, a int, o arbor.Options) (*arbor.Result, string, error) {
			res, err := arbor.ColorSqrt(ctx, g, a, o)
			return res, "thm5.3", err
		}))
	RegisterAlgorithm(sparseAlgorithm(AlgoEdgeSparse54x2,
		"Theorem 5.4 at depth x=2: (Δ^{1/2}+O(â^{1/2}))² colors via bipartite orientation connectors",
		"(Δ^{1/x}+â^{1/x}+O(1))^x, x=2",
		func(ctx context.Context, g *Graph, a int, o arbor.Options) (*arbor.Result, string, error) {
			res, err := arbor.ColorRecursive(ctx, g, a, 2, o)
			return res, "thm5.4/x=2", err
		}))
	RegisterAlgorithm(sparseAlgorithm(AlgoEdgeSparse54x3,
		"Theorem 5.4 at depth x=3",
		"(Δ^{1/x}+â^{1/x}+O(1))^x, x=3",
		func(ctx context.Context, g *Graph, a int, o arbor.Options) (*arbor.Result, string, error) {
			res, err := arbor.ColorRecursive(ctx, g, a, 3, o)
			return res, "thm5.4/x=3", err
		}))

	RegisterAlgorithm(Algorithm{
		Name: AlgoVertexDelta1, Kind: KindVertex,
		Doc:     "classical deterministic (Δ+1)-vertex-coloring (Linial + Kuhn–Wattenhofer), the paper's black box",
		Palette: "Δ+1",
		Run: func(ctx context.Context, g *Graph, p Params, opt Options) (*Coloring, error) {
			res, err := vc.Delta1(ctx, sim.NewTopology(g), int64(g.N()), opt.vc())
			if err != nil {
				return nil, err
			}
			return &Coloring{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats, Algorithm: "Δ+1"}, nil
		},
	})

	RegisterAlgorithm(Algorithm{
		Name: AlgoVertexCD, Kind: KindVertex,
		Doc:        "§3 clique-decomposition vertex coloring of bounded-diversity graphs (Theorem 3.3(i))",
		Palette:    "D^{x+1}·S",
		Params:     []ParamSpec{paramX},
		NeedsCover: true,
		Run: func(ctx context.Context, g *Graph, p Params, opt Options) (*Coloring, error) {
			x := int(p["x"])
			t := cd.ChooseT(opt.Cover.MaxCliqueSize(), x)
			res, err := cd.Color(ctx, g, opt.Cover, t, x, cd.Options{Exec: opt.engine(), VC: opt.vc()})
			if err != nil {
				return nil, err
			}
			return &Coloring{
				Colors: res.Colors, Palette: res.Palette, Stats: res.Stats,
				Algorithm: fmt.Sprintf("cd-coloring/x=%d", x),
			}, nil
		},
	})
}
