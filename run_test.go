package distcolor

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/gen"
)

// TestRegistryListsAllAlgorithms pins the registered family: every
// algorithm the wire codec historically accepted must be present, sorted.
func TestRegistryListsAllAlgorithms(t *testing.T) {
	want := []string{
		AlgoEdgeGreedy,
		AlgoEdgeSparse,
		AlgoEdgeSparse52, AlgoEdgeSparse53, AlgoEdgeSparse54x2, AlgoEdgeSparse54x3,
		AlgoEdgeStar,
		AlgoVertexCD, AlgoVertexDelta1,
	}
	if got := Algorithms(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Algorithms() = %v, want %v", got, want)
	}
	for _, info := range DescribeAlgorithms() {
		if info.Kind != KindEdge && info.Kind != KindVertex {
			t.Errorf("%s: bad kind %q", info.Name, info.Kind)
		}
		if info.Params == nil {
			t.Errorf("%s: params must marshal as [], not null", info.Name)
		}
	}
}

func TestRegistrySchemas(t *testing.T) {
	star, ok := LookupAlgorithm(AlgoEdgeStar)
	if !ok {
		t.Fatal("edge/star not registered")
	}
	if len(star.Params) != 1 || star.Params[0].Name != "x" || star.Params[0].Default != 1 {
		t.Fatalf("edge/star schema = %+v, want single x defaulting to 1", star.Params)
	}
	sparse, _ := LookupAlgorithm(AlgoEdgeSparse)
	names := map[string]ParamSpec{}
	for _, p := range sparse.Params {
		names[p.Name] = p
	}
	if _, ok := names["arboricity"]; !ok {
		t.Fatal("edge/sparse schema lacks arboricity")
	}
	if q, ok := names["q"]; !ok || q.Default != 3 || q.ClampMin != 2.05 {
		t.Fatalf("edge/sparse q schema = %+v, want default 3 and clamp 2.05", names["q"])
	}
	cdAlgo, _ := LookupAlgorithm(AlgoVertexCD)
	if !cdAlgo.NeedsCover {
		t.Fatal("vertex/cd must declare NeedsCover")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	g, _ := NewBuilder(2).Build()
	_, err := Run(context.Background(), g, "edge/does-not-exist", nil, Options{})
	var ue *UnknownAlgorithmError
	if !errors.As(err, &ue) || ue.Name != "edge/does-not-exist" {
		t.Fatalf("want *UnknownAlgorithmError, got %v", err)
	}
}

func TestRunRejectsUnknownParam(t *testing.T) {
	g := gen.ForestUnion(30, 2, 1)
	_, err := Run(context.Background(), g, AlgoEdgeGreedy, Params{"bogus": 1}, Options{})
	var pe *ParamError
	if !errors.As(err, &pe) || pe.Param != "bogus" {
		t.Fatalf("want *ParamError on bogus, got %v", err)
	}
}

// TestQContract pins the Section 5 threshold multiplier behavior at the
// Run boundary: zero selects the default 3, positive values below 2.05 are
// clamped up to 2.05 (and the clamp is visible in the resolved params),
// NaN and negative values are typed errors — not silent clamps.
func TestQContract(t *testing.T) {
	g := gen.ForestUnion(40, 2, 1)
	ctx := context.Background()

	col, err := Run(ctx, g, AlgoEdgeSparse52, Params{"arboricity": 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Params["q"] != 3 {
		t.Fatalf("default q = %v, want 3", col.Params["q"])
	}

	col, err = Run(ctx, g, AlgoEdgeSparse52, Params{"arboricity": 3, "q": 1.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Params["q"] != 2.05 {
		t.Fatalf("q=1.5 resolved to %v, want clamp to 2.05", col.Params["q"])
	}

	col, err = Run(ctx, g, AlgoEdgeSparse52, Params{"arboricity": 3, "q": 2.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Params["q"] != 2.5 {
		t.Fatalf("q=2.5 resolved to %v, want unchanged", col.Params["q"])
	}

	var pe *ParamError
	if _, err := Run(ctx, g, AlgoEdgeSparse52, Params{"q": math.NaN()}, Options{}); !errors.As(err, &pe) {
		t.Fatalf("NaN q: want *ParamError, got %v", err)
	}
	if _, err := Run(ctx, g, AlgoEdgeSparse52, Params{"q": -1}, Options{}); !errors.As(err, &pe) {
		t.Fatalf("negative q: want *ParamError, got %v", err)
	}
	// The legacy wrapper inherits the contract through Options.Q.
	if _, err := EdgeColorSparse(g, 2, Options{Q: math.NaN()}); !errors.As(err, &pe) {
		t.Fatalf("wrapper NaN Q: want *ParamError, got %v", err)
	}
}

// TestRunResolvesArboricity checks the dynamic default: an absent
// arboricity is estimated and echoed back in the resolved params.
func TestRunResolvesArboricity(t *testing.T) {
	g := gen.ForestUnion(40, 2, 1)
	col, err := Run(context.Background(), g, AlgoEdgeSparse, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	arb, ok := col.Params["arboricity"]
	if !ok || arb < 1 {
		t.Fatalf("resolved arboricity = %v (present=%v), want ≥ 1", arb, ok)
	}
	if int(arb) != ArboricityUpperBound(g) {
		t.Fatalf("resolved arboricity %v, want the degeneracy estimate %d", arb, ArboricityUpperBound(g))
	}
}

// TestRunMatchesLegacyWrappers: the one-shot entry points are wrappers
// over Run, so both paths must produce the identical coloring.
func TestRunMatchesLegacyWrappers(t *testing.T) {
	g, err := gen.NearRegular(120, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := Run(context.Background(), g, AlgoEdgeStar, Params{"x": 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Kind != KindEdge {
		t.Fatalf("kind = %q, want edge", col.Kind)
	}
	if !reflect.DeepEqual(wrapped.Colors, col.Colors) || wrapped.Palette != col.Palette || wrapped.Algorithm != col.Algorithm {
		t.Fatal("wrapper and Run diverge on the same workload")
	}
}

func TestRunNeedsCover(t *testing.T) {
	g := gen.ForestUnion(20, 1, 1)
	_, err := Run(context.Background(), g, AlgoVertexCD, nil, Options{})
	if err == nil {
		t.Fatal("vertex/cd without a cover must fail")
	}
}

func TestRunStarApplicability(t *testing.T) {
	g := gen.ForestUnion(20, 1, 1) // tiny Δ
	_, err := Run(context.Background(), g, AlgoEdgeStar, Params{"x": 8}, Options{})
	if err == nil {
		t.Fatal("x=8 on a low-degree graph must fail the applicability check")
	}
}

// cancelAfter returns Options whose observer cancels ctx after the given
// number of observed rounds, plus a counter of rounds executed after that.
func cancelAfter(cancel context.CancelFunc, after int) (Options, *int) {
	rounds := 0
	late := new(int)
	return Options{Observer: func(RoundEvent) {
		rounds++
		if rounds == after {
			cancel()
		}
		if rounds > after {
			*late++
		}
	}}, late
}

// TestRunCancellationAbortsPromptly: canceling mid-run aborts star, sparse
// and CD executions at the next round boundary, surfacing
// context.Canceled through the error chain.
func TestRunCancellationAbortsPromptly(t *testing.T) {
	reg, err := gen.NearRegular(200, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	forest := gen.ForestUnion(300, 3, 1)
	lg, cover, _, err := LineCover(gen.ForestUnion(100, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		graph  *Graph
		algo   string
		params Params
		opt    Options
	}{
		{"star", reg, AlgoEdgeStar, Params{"x": 1}, Options{}},
		{"sparse", forest, AlgoEdgeSparse, Params{"arboricity": 4}, Options{}},
		{"cd", lg, AlgoVertexCD, Params{"x": 1}, Options{Cover: cover}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opt, late := cancelAfter(cancel, 3)
			opt.Cover = tc.opt.Cover
			_, err := Run(ctx, tc.graph, tc.algo, tc.params, opt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled in the chain, got %v", err)
			}
			// The engine checks ctx before every round, so at most the
			// round already in flight can complete after cancellation.
			if *late > 1 {
				t.Fatalf("%d rounds executed after cancellation", *late)
			}
		})
	}
}

// TestRunDeadline: an already-expired deadline aborts before any round.
func TestRunDeadline(t *testing.T) {
	g, err := gen.NearRegular(100, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	ran := 0
	_, err = Run(ctx, g, AlgoEdgeGreedy, nil, Options{Observer: func(RoundEvent) { ran++ }})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if ran != 0 {
		t.Fatalf("%d rounds ran under an expired deadline", ran)
	}
}

// TestCodecToleratesIgnoredShorthand pins the codec's backward
// compatibility: legacy shorthand fields (x, arboricity, q) set on a
// request whose algorithm has no such parameter are ignored — pre-registry
// clients swept one template across algorithms — while the schema-keyed
// Params map stays strict, and negative shorthand values are still
// rejected outright.
func TestCodecToleratesIgnoredShorthand(t *testing.T) {
	spec := GraphSpec{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}

	legacy := &Request{Algorithm: AlgoEdgeGreedy, Graph: spec, X: 2, Q: 2.5}
	if err := legacy.Validate(); err != nil {
		t.Fatalf("shorthand fields on an ignoring algorithm must validate, got %v", err)
	}
	resp, err := Execute(context.Background(), legacy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Execute(context.Background(), &Request{Algorithm: AlgoEdgeGreedy, Graph: spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Colors, plain.Colors) {
		t.Fatal("ignored shorthand changed the computed coloring")
	}

	strict := &Request{Algorithm: AlgoEdgeGreedy, Graph: spec, Params: Params{"x": 2}}
	var pe *ParamError
	if err := strict.Validate(); !errors.As(err, &pe) {
		t.Fatalf("schema-keyed params must stay strict, got %v", err)
	}
	if err := (&Request{Algorithm: AlgoEdgeGreedy, Graph: spec, X: -1}).Validate(); err == nil {
		t.Fatal("negative shorthand x must be rejected")
	}
	if err := (&Request{Algorithm: AlgoEdgeGreedy, Graph: spec, Arboricity: -1}).Validate(); err == nil {
		t.Fatal("negative shorthand arboricity must be rejected")
	}
}
