# Tier-1 verify is `go build ./... && go test ./...` (ROADMAP.md); `make ci`
# runs that plus vet and the race pass over the concurrent packages.

GO ?= go

.PHONY: build test vet race bench tables ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race pass targets the packages with real concurrency: the service
# (cache + worker pool hammer), the simulator's sharded engine, and the
# parallel-vs-sequential equivalence tests in arbor.
race:
	$(GO) test -race ./internal/service/ ./internal/sim/ ./internal/graph/

bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

tables:
	$(GO) run ./cmd/colorbench -table all -quick

ci: build vet test race
