# Tier-1 verify is `go build ./... && go test ./...` (ROADMAP.md); `make ci`
# runs that plus vet, a formatting gate, and the race pass over the
# concurrent packages.

GO ?= go
FUZZTIME ?= 30s
# Staticcheck is pinned so a new upstream release cannot turn CI red on its
# own schedule; bump deliberately, with the diff in review.
STATICCHECK_VERSION ?= 2025.1.1
# Allowed fractional ns/op and allocs/op regression in bench-check;
# deterministic metrics (rounds/messages/colors) are always compared
# exactly and the sequential engines' allocs/round is always pinned at 0.
BENCH_TOLERANCE ?= 0.15

# Samples per benchmark for bench-algos; use 10+ for benchstat-grade runs.
BENCH_COUNT ?= 1

# Seed for the deterministic chaos suite (`make chaos`). Every fault the
# schedule fires is a pure function of this value, so a failing run is
# replayed exactly by re-running with the seed from its report.
CHAOS_SEED ?= 1

.PHONY: build test vet lint lint-codec fmt-check staticcheck race bench bench-algos bench-baseline bench-check bench-codec tables fuzz profile chaos ci

# Where `make profile` writes cpu.pprof/heap.pprof; CI uploads it as an
# artifact on pull requests.
PROFILE_DIR ?= profiles
PROFILE_DURATION ?= 30s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The distcolorvet suite: the repository's own go/analysis passes —
# detcheck (determinism), noallochot (zero-alloc hot paths), lockguard
# (mutex discipline), ctxfirst (context hygiene), recovercheck (declared
# recovery points), and the flow-sensitive passes on the in-tree CFG +
# dataflow engine: leakcheck (goroutine lifetime), lockorder
# (acquisition-order cycles), decodebounds (wire-sized allocations),
# atomicguard (atomic-vs-plain access) — plus stdlib reimplementations
# of nilness and shadow, run through `go vet -vettool` so a violation is
# a build break. Zero unsuppressed findings is the gate; suppressions
# (//distcolor:ignore) are counted in the output, and `distcolorvet
# -json` emits NDJSON for tooling. See DESIGN.md §10 for the contracts
# and the annotation grammar.
lint:
	$(GO) build -o bin/distcolorvet ./cmd/distcolorvet
	$(GO) vet -vettool=$(abspath bin/distcolorvet) ./...
	@$(MAKE) --no-print-directory lint-codec

# distcolor.Codec is the single encode/decode surface for wire types: any
# raw encoding/json call on a Request/Response/GraphSpec/Coloring/JobRecord
# outside the root codec files (or tests) bypasses the codec dispatch and
# the binary wire. Grep-grade by design — cheap, zero deps, and the codec
# files it exempts are exactly where such calls belong.
lint-codec:
	@bad=$$(grep -rn --include='*.go' \
		-e 'json\.\(Marshal\|MarshalIndent\|Unmarshal\|NewEncoder\|NewDecoder\)' \
		cmd internal | \
		grep -v '_test\.go' | \
		grep -e 'distcolor\.\(Request\|Response\|GraphSpec\|Coloring\|JobRecord\)\b' || true); \
	if [ -n "$$bad" ]; then \
		echo "wire types must go through distcolor.Codec (codec.go), not raw encoding/json:"; \
		echo "$$bad"; exit 1; \
	fi

# CI fails on unformatted files; gofmt -l prints them for the log.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Static analysis beyond vet. The binary is not vendored and the build must
# not fetch dependencies, so locally the gate runs when staticcheck is on
# PATH and skips loudly otherwise. In CI (the CI env var is set) it runs
# the pinned version via `go run pkg@version`, so the checked toolchain
# changes only when STATICCHECK_VERSION is bumped.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI pins honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# The race pass targets the packages with real concurrency: the service —
# cache + worker pool hammer, the WAL store and admission paths
# (submit/cancel/restart hammer, sharded batch executor, overload floods)
# — the simulator's sharded engine, the pooled graph scratch tables, and
# the service-overload bench workload in svcbench.
race:
	$(GO) test -race ./internal/service/ ./internal/sim/ ./internal/graph/ ./internal/svcbench/

# One pass over every benchmark in the repository (root tables suite,
# internal/sim data-plane benchmarks, ...). -benchtime 1x keeps it a smoke
# run; see README for benchstat-grade measurement instructions.
bench:
	$(GO) test -bench . -benchtime 1x -run XXX ./...

# End-to-end algorithm benchmarks (Linial, CD, the §4 pipeline at 32 and
# 100k): the benchstat-friendly twins of the algo/* suite workloads.
# `make bench-algos BENCH_COUNT=10 > new.txt` produces samples for
# `benchstat old.txt new.txt`; CI uploads the base-vs-head comparison as a
# build artifact on every pull request.
bench-algos:
	$(GO) test ./internal/bench -run XXX -bench '^BenchmarkAlgo' -benchmem -count $(BENCH_COUNT)

# Regenerate the committed simulator-core perf baseline (BENCH_simcore.json).
bench-baseline:
	$(GO) run ./cmd/colorbench -json -out BENCH_simcore.json

# Re-run the simulator-core suite and fail on regression vs the committed
# baseline: >BENCH_TOLERANCE on ns/op or allocs/op, any drift of the
# deterministic rounds/messages/colors columns, or any steady-state
# per-round allocation in the sequential engines.
bench-check:
	$(GO) run ./cmd/colorbench -json -check BENCH_simcore.json -tolerance $(BENCH_TOLERANCE)

tables:
	$(GO) run ./cmd/colorbench -table all -quick

# 30s CPU + heap profile of the linial-10k workload (the hot algorithm
# substrate of the simcore suite), written to $(PROFILE_DIR)/{cpu,heap}.pprof.
# Inspect with `go tool pprof -http=:0 $(PROFILE_DIR)/cpu.pprof`; CI attaches
# the directory to every pull request.
profile:
	$(GO) run ./cmd/colorbench -profile $(PROFILE_DIR) -profile-duration $(PROFILE_DURATION)

# Fuzz the surfaces that read arbitrary user bytes: the edge-list parser
# and the binary wire-frame decoder. Go allows one -fuzz per invocation, so
# the targets run back to back; corpus findings land in each package's
# testdata/fuzz.
fuzz:
	$(GO) test ./internal/graph/ -run '^$$' -fuzz FuzzReadEdgeList -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME)

# The deterministic chaos suite (DESIGN.md §12): one seeded schedule drives
# a 200-job workload through every injection point — scheduled panics,
# injected execution errors, deadline overruns, admission faults, a dying
# then healing journal disk, a torn journal tail across a restart, and a
# flaky client transport — and asserts the failure-domain invariants (no
# job lost or duplicated, no ID reuse, typed terminals, process survival,
# degraded entered AND exited). A failure report embeds the full schedule,
# so `make chaos CHAOS_SEED=<seed from the report>` replays it bit-for-bit.
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test ./internal/service -run '^TestChaos$$' -v -count=1

# The JSON-vs-binary codec benchmark (encode/decode of the 100k pipeline
# request). `make bench-codec BENCH_COUNT=10 > codec.txt` gives benchstat
# samples; CI uploads the json-vs-binary comparison on pull requests.
bench-codec:
	$(GO) test . -run '^$$' -bench '^BenchmarkWireCodec' -benchmem -count $(BENCH_COUNT)

ci: build vet lint fmt-check staticcheck test race
