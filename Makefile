# Tier-1 verify is `go build ./... && go test ./...` (ROADMAP.md); `make ci`
# runs that plus vet, a formatting gate, and the race pass over the
# concurrent packages.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test vet fmt-check race bench tables fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# CI fails on unformatted files; gofmt -l prints them for the log.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The race pass targets the packages with real concurrency: the service
# (cache + worker pool hammer), the simulator's sharded engine, and the
# parallel-vs-sequential equivalence tests in arbor.
race:
	$(GO) test -race ./internal/service/ ./internal/sim/ ./internal/graph/

bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

tables:
	$(GO) run ./cmd/colorbench -table all -quick

# Fuzz the edge-list parser (the one surface that reads arbitrary user
# bytes). Corpus findings land in internal/graph/testdata/fuzz.
fuzz:
	$(GO) test ./internal/graph/ -run '^$$' -fuzz FuzzReadEdgeList -fuzztime $(FUZZTIME)

ci: build vet fmt-check test race
