package distcolor

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-codec fixtures under testdata/codec")

// goldenCases pins the wire codec: one Request/Response JSON pair per
// algorithm family, checked into testdata/codec. Every algorithm here is
// deterministic, so the response fixtures are stable across engines and
// platforms; any change to the wire shape (field names, omitempty
// behavior, palette or stats values) shows up as a fixture diff.
func goldenCases(t *testing.T) map[string]*Request {
	t.Helper()
	cycle := GraphSpec{N: 6, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}}
	reg, err := gen.NearRegular(24, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	forest := gen.ForestUnion(24, 2, 1)
	lg, cover, _, err := LineCover(gen.ForestUnion(12, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	cdSpec := Spec(lg)
	cdSpec.Cliques = cover.Cliques
	return map[string]*Request{
		"greedy_cycle":  {Algorithm: AlgoEdgeGreedy, Graph: cycle},
		"star_x1":       {Algorithm: AlgoEdgeStar, Graph: Spec(reg), X: 1},
		"sparse_forest": {Algorithm: AlgoEdgeSparse, Graph: Spec(forest), Arboricity: 3},
		"sparse_52_q":   {Algorithm: AlgoEdgeSparse52, Graph: Spec(forest), Arboricity: 3, Q: 2.5},
		"sparse_params": {Algorithm: AlgoEdgeSparse53, Graph: Spec(forest), Params: Params{"arboricity": 3}},
		"delta1_cycle":  {Algorithm: AlgoVertexDelta1, Graph: cycle},
		"cd_linecover":  {Algorithm: AlgoVertexCD, Graph: cdSpec, X: 1},
		// A deadline-carrying request pins the flag-gated deadline_ms field
		// on both wire formats (flagDeadlineMS on the binary frame).
		"greedy_deadline": {Algorithm: AlgoEdgeGreedy, Graph: cycle, DeadlineMS: 1500},
	}
}

func goldenPath(name, kind string) string {
	return filepath.Join("testdata", "codec", name+"."+kind+".json")
}

func goldenBinPath(name, kind string) string {
	return filepath.Join("testdata", "codec", name+"."+kind+".bin")
}

func writeOrCompare(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestCodecGolden -update .`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestCodecGoldenFiles executes every fixture request and compares both
// sides of the wire against the checked-in JSON.
func TestCodecGoldenFiles(t *testing.T) {
	for name, req := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			reqJSON, err := json.MarshalIndent(req, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			reqJSON = append(reqJSON, '\n')
			writeOrCompare(t, goldenPath(name, "request"), reqJSON)

			// The fixture on disk must parse back into an equivalent
			// request (decode side of the round trip).
			var decoded Request
			if err := json.Unmarshal(reqJSON, &decoded); err != nil {
				t.Fatal(err)
			}
			if err := decoded.Validate(); err != nil {
				t.Fatalf("golden request invalid: %v", err)
			}

			resp, err := Execute(context.Background(), &decoded, Options{})
			if err != nil {
				t.Fatal(err)
			}
			respJSON, err := json.MarshalIndent(resp, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			respJSON = append(respJSON, '\n')
			writeOrCompare(t, goldenPath(name, "response"), respJSON)
		})
	}
}

// TestCodecGoldenBinary pins the binary frame encoding byte-for-byte against
// checked-in fixtures, and cross-checks codec equivalence: the binary fixture
// must decode to the same value as the JSON fixture for every golden case.
// `-update` regenerates the .bin files alongside the JSON ones.
func TestCodecGoldenBinary(t *testing.T) {
	for name, req := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			reqBin, err := CodecBinary.Encode(req)
			if err != nil {
				t.Fatal(err)
			}
			writeOrCompare(t, goldenBinPath(name, "request"), reqBin)

			var fromBin Request
			if err := CodecBinary.Decode(reqBin, &fromBin); err != nil {
				t.Fatal(err)
			}
			reqJSON, err := CodecJSON.Encode(req)
			if err != nil {
				t.Fatal(err)
			}
			var fromJSON Request
			if err := CodecJSON.Decode(reqJSON, &fromJSON); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&fromBin, &fromJSON) {
				t.Fatalf("binary and JSON codecs disagree on %s:\nbinary: %+v\njson:   %+v", name, fromBin, fromJSON)
			}

			resp, err := Execute(context.Background(), &fromBin, Options{})
			if err != nil {
				t.Fatal(err)
			}
			respBin, err := CodecBinary.Encode(resp)
			if err != nil {
				t.Fatal(err)
			}
			writeOrCompare(t, goldenBinPath(name, "response"), respBin)

			var respBack Response
			if err := CodecBinary.Decode(respBin, &respBack); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resp, &respBack) {
				t.Fatalf("binary response round trip drifted for %s", name)
			}
		})
	}
}
