package distcolor

// The benchmarks in this file regenerate every quantitative artifact of the
// paper's evaluation — one benchmark (or sub-benchmark family) per table
// row / theorem, as indexed in DESIGN.md §3 and recorded in EXPERIMENTS.md.
// Each benchmark verifies the coloring it produces and reports, besides
// ns/op, the domain metrics that the paper's tables are actually about:
//
//	colors  — the guaranteed palette bound
//	rounds  — executed LOCAL communication rounds
//	msgs    — messages sent
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/arbor"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/util"
	"repro/internal/vc"
	"repro/internal/verify"
)

const benchSeed = 2017 // PODC 2017

func report(b *testing.B, colors int64, st sim.Stats) {
	b.ReportMetric(float64(colors), "colors")
	b.ReportMetric(float64(st.Rounds), "rounds")
	b.ReportMetric(float64(st.Messages), "msgs")
}

// --- Experiments T1.x1–T1.gen: Table 1 -----------------------------------

// BenchmarkTable1Ours measures the paper's (2^{x+1}Δ)-edge-coloring
// (Theorem 4.1) for the Δ sweep of each Table 1 row.
func BenchmarkTable1Ours(b *testing.B) {
	for _, x := range []int{1, 2, 3} {
		for _, delta := range []int{16, 32, 64} {
			if delta < 1<<(x+1) {
				continue
			}
			b.Run(fmt.Sprintf("x=%d/delta=%d", x, delta), func(b *testing.B) {
				g, err := bench.Workload(delta, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				t, err := star.ChooseT(g.MaxDegree(), x)
				if err != nil {
					b.Skip(err)
				}
				var last *star.Result
				for i := 0; i < b.N; i++ {
					last, err = star.EdgeColor(context.Background(), g, t, x, star.Options{})
					if err != nil {
						b.Fatal(err)
					}
				}
				if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
					b.Fatal(err)
				}
				if last.Palette > star.Bound(g.MaxDegree(), x) {
					b.Fatalf("palette %d exceeds 2^{x+1}Δ", last.Palette)
				}
				report(b, last.Palette, last.Stats)
			})
		}
	}
}

// BenchmarkTable1Previous measures the emulated previous best ([7]+[17]
// profile) on the same workloads — the right-hand columns of Table 1.
func BenchmarkTable1Previous(b *testing.B) {
	for _, x := range []int{1, 2, 3} {
		for _, delta := range []int{16, 32, 64} {
			if delta < 1<<(x+2) {
				continue
			}
			b.Run(fmt.Sprintf("x=%d/delta=%d", x, delta), func(b *testing.B) {
				g, err := bench.Workload(delta, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				var last *star.Result
				for i := 0; i < b.N; i++ {
					last, err = baseline.BE11EdgeColor(context.Background(), g, x, star.Options{})
					if err != nil {
						b.Skip(err)
					}
				}
				if err := verify.EdgeColoring(g, last.Colors, last.Declared); err != nil {
					b.Fatal(err)
				}
				report(b, last.Declared, last.Stats)
			})
		}
	}
}

// BenchmarkTable1TwoDelta measures the classical (2Δ−1) baseline row.
func BenchmarkTable1TwoDelta(b *testing.B) {
	for _, delta := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			g, err := bench.Workload(delta, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			var last *vc.Result
			for i := 0; i < b.N; i++ {
				last, err = baseline.TwoDeltaMinusOne(context.Background(), g, vc.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// --- Experiments T2.x1–T2.gen: Table 2 -----------------------------------

// BenchmarkTable2Ours measures CD-Coloring (Theorem 3.3(i)) on line graphs
// of 3-uniform hypergraphs (diversity ≤ 3), sweeping the clique size S via
// the hyperedge count.
func BenchmarkTable2Ours(b *testing.B) {
	for _, x := range []int{1, 2, 3} {
		for _, ne := range []int{200, 400, 800} {
			b.Run(fmt.Sprintf("x=%d/ne=%d", x, ne), func(b *testing.B) {
				g, cov := hyperInstance(b, 40, 3, ne)
				t := cd.ChooseT(cov.MaxCliqueSize(), x)
				var last *cd.Result
				var err error
				for i := 0; i < b.N; i++ {
					last, err = cd.Color(context.Background(), g, cov, t, x, cd.Options{})
					if err != nil {
						b.Fatal(err)
					}
				}
				if err := verify.VertexColoring(g, last.Colors, last.Palette); err != nil {
					b.Fatal(err)
				}
				if last.Palette > last.Bound {
					b.Fatalf("palette %d exceeds D^{x+1}S = %d", last.Palette, last.Bound)
				}
				report(b, last.Palette, last.Stats)
			})
		}
	}
}

// BenchmarkTable2Previous measures the emulated [7]+[17] profile on the
// same diversity-bounded workloads.
func BenchmarkTable2Previous(b *testing.B) {
	for _, x := range []int{1, 2, 3} {
		for _, ne := range []int{200, 400, 800} {
			b.Run(fmt.Sprintf("x=%d/ne=%d", x, ne), func(b *testing.B) {
				g, cov := hyperInstance(b, 40, 3, ne)
				var last *cd.Result
				var err error
				for i := 0; i < b.N; i++ {
					last, err = baseline.BE11VertexColor(context.Background(), g, cov, x, cd.Options{})
					if err != nil {
						b.Fatal(err)
					}
				}
				if err := verify.VertexColoring(g, last.Colors, last.Declared); err != nil {
					b.Fatal(err)
				}
				report(b, last.Declared, last.Stats)
			})
		}
	}
}

// --- Experiment E3.3: Theorem 3.3(i) time shape --------------------------

// BenchmarkThm33 sweeps S at fixed x to expose the Õ(x·√D·S^{1/(x+1)})
// round shape of CD-Coloring (doubled exponents under our Linial+KW black
// box; see EXPERIMENTS.md).
func BenchmarkThm33(b *testing.B) {
	for _, ne := range []int{100, 200, 400, 800} {
		b.Run(fmt.Sprintf("x=1/ne=%d", ne), func(b *testing.B) {
			g, cov := hyperInstance(b, 40, 3, ne)
			t := cd.ChooseT(cov.MaxCliqueSize(), 1)
			var last *cd.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = cd.Color(context.Background(), g, cov, t, 1, cd.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.VertexColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cov.MaxCliqueSize()), "S")
			report(b, last.Palette, last.Stats)
		})
	}
}

// --- Experiment E3.polylog: 2S^{1+o(1)} colors at x ≈ log S --------------

// BenchmarkPolylogColors sets x = ⌈log₂S / log₂log₂S⌉ on a diversity-2
// instance, the §3 corollary's regime: palette 2S^{1+o(1)}, rounds
// polylogarithmic in S.
func BenchmarkPolylogColors(b *testing.B) {
	for _, n := range []int{40, 80} {
		b.Run(fmt.Sprintf("base=%d", n), func(b *testing.B) {
			base := gen.GNP(n, 0.4, benchSeed)
			lgr := graph.LineGraph(base)
			cov, err := cliques.FromLineGraph(lgr)
			if err != nil {
				b.Fatal(err)
			}
			s := cov.MaxCliqueSize()
			loglog := util.Max(1, util.Log2Ceil(util.Max(2, util.Log2Ceil(s))))
			x := util.Max(1, util.Log2Ceil(s)/loglog)
			t := cd.ChooseT(s, x)
			var last *cd.Result
			for i := 0; i < b.N; i++ {
				last, err = cd.Color(context.Background(), lgr.L, cov, t, x, cd.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.VertexColoring(lgr.L, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(x), "x")
			b.ReportMetric(float64(s), "S")
			report(b, last.Palette, last.Stats)
		})
	}
}

// --- Experiments E5.2–E5.5: Section 5 ------------------------------------

func sparseWorkload(b *testing.B, n, a, hub int) *graph.Graph {
	b.Helper()
	g, err := gen.ForestUnionHub(n, a, hub, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkThm52 measures the (Δ+O(a))-edge-coloring across a Δ sweep at
// fixed arboricity.
func BenchmarkThm52(b *testing.B) {
	for _, hub := range []int{100, 200, 400, 800} {
		b.Run(fmt.Sprintf("delta≈%d", hub), func(b *testing.B) {
			g := sparseWorkload(b, 3*hub, 2, hub)
			var last *arbor.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = arbor.ColorHPartition(context.Background(), g, 3, arbor.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// BenchmarkThm53 measures the Δ+O(√(Δa))+O(a) algorithm on the same sweep.
func BenchmarkThm53(b *testing.B) {
	for _, hub := range []int{100, 200, 400, 800} {
		b.Run(fmt.Sprintf("delta≈%d", hub), func(b *testing.B) {
			g := sparseWorkload(b, 3*hub, 2, hub)
			var last *arbor.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = arbor.ColorSqrt(context.Background(), g, 3, arbor.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// BenchmarkThm54 sweeps the recursion depth x of Theorem 5.4.
func BenchmarkThm54(b *testing.B) {
	g := sparseWorkload(b, 1200, 2, 400)
	for _, x := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			var last *arbor.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = arbor.ColorRecursive(context.Background(), g, 3, x, arbor.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// BenchmarkCor55 measures the adaptive Δ(1+o(1)) variant on graphs with a
// widening Δ/a gap, plus constant-arboricity families (grid, tree).
func BenchmarkCor55(b *testing.B) {
	run := func(name string, g *graph.Graph, a int) {
		b.Run(name, func(b *testing.B) {
			var last *arbor.Result
			var plan arbor.Plan
			var err error
			for i := 0; i < b.N; i++ {
				last, plan, err = arbor.ColorAdaptive(context.Background(), g, a, arbor.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(last.Palette)/float64(g.MaxDegree()), "palette/Δ")
			_ = plan
			report(b, last.Palette, last.Stats)
		})
	}
	run("hub400", sparseWorkload(b, 1200, 2, 400), 3)
	run("hub1600", sparseWorkload(b, 3200, 2, 1600), 3)
	run("grid", gen.Grid(40, 40), 2)
	run("tree", gen.Tree(1500, benchSeed), 1)
}

// --- Experiment B.PR: classical baseline round shape ---------------------

// BenchmarkTwoDeltaBaseline exposes the Θ(Δ·log Δ) round growth of the
// classical (2Δ−1) algorithm under our engine, against which the
// connector algorithms' sublinear-in-Δ final stages are compared.
func BenchmarkTwoDeltaBaseline(b *testing.B) {
	for _, delta := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			g, err := bench.Workload(delta, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			var last *vc.Result
			for i := 0; i < b.N; i++ {
				last, err = baseline.TwoDeltaMinusOne(context.Background(), g, vc.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// --- Ablation A.t: connector parameter sweep (Theorem 2.7 trade-off) -----

// BenchmarkAblationT sweeps t around the optimal ⌊√S⌋ at x=1: smaller t
// means a cheaper connector but bigger classes; larger t the reverse. The
// paper's choice should sit at (or near) the round minimum.
func BenchmarkAblationT(b *testing.B) {
	g, cov := hyperInstance(b, 60, 3, 300)
	s := cov.MaxCliqueSize()
	opts := []int{2, util.Max(2, util.ISqrt(s)/2), util.Max(2, util.ISqrt(s)), util.Max(2, 2*util.ISqrt(s)), util.Max(2, s-1)}
	seen := map[int]bool{}
	for _, t := range opts {
		if seen[t] {
			continue
		}
		seen[t] = true
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			var last *cd.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = cd.Color(context.Background(), g, cov, t, 1, cd.Options{SkipTrim: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.VertexColoring(g, last.Colors, last.Declared); err != nil {
				b.Fatal(err)
			}
			report(b, last.Declared, last.Stats)
		})
	}
}

// --- Ablation A.engine: KW vs naive class iteration in the black box -----

// BenchmarkAblationEngine compares the two reduction strategies inside the
// (Δ+1) black box; the naive one-class-per-round reduction is the "basic
// reduction" of the paper used where palettes are small.
func BenchmarkAblationEngine(b *testing.B) {
	for _, r := range []struct {
		name   string
		red    vc.Reducer
		deltas []int
	}{
		{"kw", vc.ReducerKW, []int{16, 32, 64}},
		// The naive reduction pays Θ(Δ²log²Δ) rounds — at Δ=64 that is
		// ~2.6·10⁵ rounds of simulation; cap its sweep where it remains
		// measurable in reasonable wall-clock time. The point (orders of
		// magnitude between the strategies) is visible at Δ=32 already.
		{"trim", vc.ReducerTrim, []int{16, 32}},
	} {
		for _, delta := range r.deltas {
			b.Run(fmt.Sprintf("%s/delta=%d", r.name, delta), func(b *testing.B) {
				g, err := bench.Workload(delta, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				topo := sim.NewTopology(g)
				var last *vc.Result
				for i := 0; i < b.N; i++ {
					last, err = vc.Delta1(context.Background(), topo, int64(g.N()), vc.Options{Reducer: r.red})
					if err != nil {
						b.Fatal(err)
					}
				}
				if err := verify.VertexColoring(g, last.Colors, last.Palette); err != nil {
					b.Fatal(err)
				}
				report(b, last.Palette, last.Stats)
			})
		}
	}
}

// --- Ablation A.seed: the §3 identifier-reuse trick ----------------------

// BenchmarkAblationSeed compares CD-Coloring with the one-shot seed
// coloring (the §3 trick, default) against recomputing Linial from raw IDs
// in every recursive call, isolating the log*-reuse saving.
func BenchmarkAblationSeed(b *testing.B) {
	g, cov := hyperInstance(b, 60, 3, 300)
	s := cov.MaxCliqueSize()
	t := cd.ChooseT(s, 2)
	b.Run("with-seed", func(b *testing.B) {
		var last *cd.Result
		var err error
		for i := 0; i < b.N; i++ {
			last, err = cd.Color(context.Background(), g, cov, t, 2, cd.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, last.Palette, last.Stats)
	})
	b.Run("no-seed", func(b *testing.B) {
		// Simulate per-level restarts: hand every level the identity seed
		// with the full n-sized palette, forcing the long Linial schedule.
		ids := make([]int64, g.N())
		for v := range ids {
			ids[v] = int64(v)
		}
		var last *cd.Result
		var err error
		for i := 0; i < b.N; i++ {
			last, err = cd.Color(context.Background(), g, cov, t, 2, cd.Options{Seed: ids, SeedPalette: int64(g.N())})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, last.Palette, last.Stats)
	})
}

// --- Ablation A.internal: Theorem 5.2's internal-stage variant -----------

// BenchmarkAblationInternalStar compares the default (2θ−1) black-box
// internal stage of Theorem 5.2 against the §4 star-partition variant the
// paper suggests (4θ colors, faster for large θ).
func BenchmarkAblationInternalStar(b *testing.B) {
	g := sparseWorkload(b, 1000, 8, 300) // moderate arboricity → θ ≈ 27
	for _, v := range []struct {
		name string
		star bool
	}{{"blackbox", false}, {"starpartition", true}} {
		b.Run(v.name, func(b *testing.B) {
			var last *arbor.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = arbor.ColorHPartition(context.Background(), g, 9, arbor.Options{InternalStar: v.star})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.EdgeColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// --- Extension: CONGEST-style message-size accounting ---------------------

// BenchmarkMessageSizes records the maximum single-message size (in bits)
// each algorithm ships — the LOCAL model allows unbounded messages, and
// this quantifies how far each algorithm actually strays from
// CONGEST-compatible O(log n)-bit messages.
func BenchmarkMessageSizes(b *testing.B) {
	g := sparseWorkload(b, 600, 2, 200)
	b.Run("thm5.2", func(b *testing.B) {
		var last *arbor.Result
		var err error
		for i := 0; i < b.N; i++ {
			last, err = arbor.ColorHPartition(context.Background(), g, 3, arbor.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.Stats.MaxMessageBits), "maxMsgBits")
		b.ReportMetric(float64(last.Stats.Bits), "totalBits")
		report(b, last.Palette, last.Stats)
	})
	b.Run("star/x=1", func(b *testing.B) {
		t, err := star.ChooseT(g.MaxDegree(), 1)
		if err != nil {
			b.Skip(err)
		}
		var last *star.Result
		for i := 0; i < b.N; i++ {
			last, err = star.EdgeColor(context.Background(), g, t, 1, star.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.Stats.MaxMessageBits), "maxMsgBits")
		b.ReportMetric(float64(last.Stats.Bits), "totalBits")
		report(b, last.Palette, last.Stats)
	})
}

// --- Linial substrate scaling --------------------------------------------

// BenchmarkLinial isolates the O(log* n) substrate: rounds must stay flat
// as n grows by orders of magnitude.
func BenchmarkLinial(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g, err := gen.NearRegular(n, 8, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			topo := sim.NewTopology(g)
			var last *linial.Result
			for i := 0; i < b.N; i++ {
				last, err = linial.Reduce(context.Background(), sim.Sequential, topo, int64(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := verify.VertexColoring(g, last.Colors, last.Palette); err != nil {
				b.Fatal(err)
			}
			report(b, last.Palette, last.Stats)
		})
	}
}

// --- Engine comparison ----------------------------------------------------

// BenchmarkEngines compares wall-clock of the sequential and goroutine
// engines on an identical workload (results are bit-identical; only speed
// differs).
func BenchmarkEngines(b *testing.B) {
	g, err := gen.NearRegular(20_000, 12, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []struct {
		name string
		eng  sim.Engine
	}{{"sequential", sim.Sequential}, {"parallel", sim.Parallel}} {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linial.Reduce(context.Background(), e.eng, sim.NewTopology(g), int64(g.N())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func hyperInstance(b *testing.B, nv, rank, ne int) (*graph.Graph, *cliques.Cover) {
	b.Helper()
	h, err := gen.UniformHypergraph(nv, rank, ne, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	lgr := h.LineGraph()
	var lists [][]int32
	for _, cl := range lgr.Cliques {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	cov, err := cliques.NewCover(lgr.L, lists)
	if err != nil {
		b.Fatal(err)
	}
	return lgr.L, cov
}
