// Command distcolorvet is the repository's static-analysis multichecker:
// the syntax-directed invariant passes (detcheck, noallochot, lockguard,
// ctxfirst, recovercheck), the flow-sensitive passes built on the
// in-tree CFG + dataflow engine (leakcheck, lockorder, decodebounds,
// atomicguard), and stdlib reimplementations of the stock nilness and
// shadow vet analyzers, speaking the `go vet -vettool` protocol.
//
// Run it through the build system, never by hand:
//
//	make lint          # builds bin/distcolorvet, then
//	                   # go vet -vettool=bin/distcolorvet ./...
//
// Individual passes can be disabled for triage, e.g.
//
//	go vet -vettool=bin/distcolorvet -lockguard=false ./...
//
// and -json switches the plain-text findings to NDJSON (one object per
// finding, suppressed ones included) for tooling such as the CI problem
// matcher.
//
// See DESIGN.md §10 for each pass's contract, the annotation grammar
// (//distcolor:noalloc, "guarded by", //distcolor:detached), and the
// suppression policy (//distcolor:ignore <analyzer> <reason>).
package main

import "repro/internal/analyzers"

func main() {
	analyzers.Main(analyzers.All()...)
}
