// Command distcolorvet is the repository's static-analysis multichecker:
// the custom invariant passes (detcheck, noallochot, lockguard,
// ctxfirst) plus stdlib reimplementations of the stock nilness and
// shadow vet analyzers, speaking the `go vet -vettool` protocol.
//
// Run it through the build system, never by hand:
//
//	make lint          # builds bin/distcolorvet, then
//	                   # go vet -vettool=bin/distcolorvet ./...
//
// Individual passes can be disabled for triage, e.g.
//
//	go vet -vettool=bin/distcolorvet -lockguard=false ./...
//
// See DESIGN.md §10 for each pass's contract, the annotation grammar
// (//distcolor:noalloc, "guarded by"), and the suppression policy
// (//distcolor:ignore <analyzer> <reason>).
package main

import "repro/internal/analyzers"

func main() {
	analyzers.Main(analyzers.All()...)
}
