package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	distcolor "repro"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/service"
)

// Remote mode: instead of running the experiment tables in-process,
// colorbench drives a live colord instance — the bench harness doubling as
// a service load generator. Workloads are synthesized server-side via
// /v1/generate, every sweep is submitted twice so the second pass exercises
// the result cache, and the server's own counters (cache hits, rounds,
// messages) are reported alongside per-job results.

// remoteSweep is one generator workload family plus the algorithm template
// to run it under.
type remoteSweep struct {
	name string
	gen  service.GenSpec
	tmpl distcolor.Request
}

func remoteSweeps(seed int64, quick bool) []remoteSweep {
	count := 3
	n := 600
	hub := 200
	if quick {
		count = 2
		n = 300
		hub = 100
	}
	return []remoteSweep{
		{
			name: "sparse/foresthub",
			gen:  service.GenSpec{Family: "foresthub", N: n, A: 2, Hub: hub, Seed: seed, Count: count},
			tmpl: distcolor.Request{Algorithm: distcolor.AlgoEdgeSparse, Arboricity: 3},
		},
		{
			name: "star/nearregular",
			gen:  service.GenSpec{Family: "nearregular", N: 256, Degree: 16, Seed: seed, Count: count},
			tmpl: distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, X: 1},
		},
		{
			name: "greedy/gnp",
			gen:  service.GenSpec{Family: "gnp", N: 200, P: 0.05, Seed: seed, Count: count},
			tmpl: distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy},
		},
		{
			name: "cd/hypergraph",
			gen:  service.GenSpec{Family: "hypergraph", NV: 30, Rank: 3, NE: 120, Seed: seed, Count: count},
			tmpl: distcolor.Request{Algorithm: distcolor.AlgoVertexCD, X: 1},
		},
	}
}

// runRemote drives the colord instance at base through the sweeps.
func runRemote(ctx context.Context, base string, seed int64, quick bool) error {
	c := &service.Client{Base: base}
	before, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("cannot reach colord at %s: %w", base, err)
	}

	var rows [][]string
	for _, sw := range remoteSweeps(seed, quick) {
		// Two passes over identical workloads: the first simulates, the
		// second must be answered by the content-addressed result cache.
		for pass := 1; pass <= 2; pass++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			batch, genErr := c.Generate(ctx, service.GenerateRequest{Gen: sw.gen, Template: sw.tmpl})
			if genErr != nil {
				return fmt.Errorf("sweep %s pass %d: %w", sw.name, pass, genErr)
			}
			for i, job := range batch.Jobs {
				if job.Error != "" {
					return fmt.Errorf("sweep %s pass %d job %d: %s", sw.name, pass, i, job.Error)
				}
				st, waitErr := c.Wait(ctx, job.ID, 50*time.Millisecond, 10*time.Minute)
				if waitErr != nil {
					return waitErr
				}
				if st.State != service.StateDone {
					return fmt.Errorf("sweep %s pass %d job %s: state %s (%s)", sw.name, pass, job.ID, st.State, st.Error)
				}
				// The cache contract is part of what this harness checks:
				// an identical pass-2 workload must not re-simulate.
				if pass == 2 && !st.CacheHit {
					return fmt.Errorf("sweep %s job %s: pass-2 workload was not served from the result cache", sw.name, job.ID)
				}
				rows = append(rows, []string{
					sw.name, strconv.Itoa(pass), st.ID,
					strconv.Itoa(st.N), strconv.Itoa(st.M),
					st.Algorithm,
					strconv.FormatInt(st.Palette, 10),
					strconv.Itoa(st.Rounds),
					strconv.FormatInt(st.Messages, 10),
					strconv.FormatInt(st.WallMS, 10),
					strconv.FormatBool(st.CacheHit),
				})
			}
		}
	}

	if err := bench.RenderTable(os.Stdout,
		"colord load run (remote): every pass-2 row must be served from the result cache",
		[]string{"sweep", "pass", "job", "n", "m", "algorithm", "palette", "rounds", "messages", "wall ms", "cached"},
		rows); err != nil {
		return err
	}

	after, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nserver counters over this run: submitted=%d completed=%d cache hits=%d misses=%d bad=%d; rounds=%d messages=%d\n",
		after.Submitted-before.Submitted,
		after.Completed-before.Completed,
		after.CacheHits-before.CacheHits,
		after.CacheMisses-before.CacheMisses,
		after.CacheBadHits-before.CacheBadHits,
		after.RoundsTotal-before.RoundsTotal,
		after.MessagesTotal-before.MessagesTotal)
	return nil
}

// runOverload floods the colord instance at base with tiny submissions —
// retries disabled so every 429 is observed — and reports the admission
// split (accepted vs shed), shed-response latency, the p50/p95/max of the
// Retry-After hints the server handed out, and the readiness view before
// and after. The in-process twin of this scenario (a frozen server,
// deterministic occupancy) is the service/overload workload gated by
// BENCH_simcore.json; this remote mode measures a live daemon instead.
func runOverload(ctx context.Context, base string, n, concurrency int) error {
	c := &service.Client{Base: base, MaxRetries: -1}
	h0, err := c.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("cannot reach colord at %s: %w", base, err)
	}
	fmt.Printf("healthz before: ready=%v queue=%d/%d inflight=%dB\n", h0.Ready, h0.QueueDepth, h0.QueueCap, h0.InflightBytes)

	type outcome struct {
		shed       bool
		err        error
		dur        time.Duration
		retryAfter time.Duration
	}
	results := make([]outcome, n)
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			g := gen.GNP(24, 0.2, int64(i)) // distinct seeds defeat the cache
			req := &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(g)}
			t0 := time.Now()
			_, subErr := c.Submit(ctx, req)
			d := time.Since(t0)
			var he *service.HTTPError
			switch {
			case subErr == nil:
				results[i] = outcome{dur: d}
			case errors.As(subErr, &he) && he.Code == http.StatusTooManyRequests:
				results[i] = outcome{shed: true, dur: d, retryAfter: he.RetryAfter}
			default:
				results[i] = outcome{err: subErr, dur: d}
			}
		}(i)
	}
	wg.Wait()

	accepted, shed := 0, 0
	var shedTotal, shedMax time.Duration
	var retryAfters []time.Duration
	for _, r := range results {
		switch {
		case r.err != nil:
			return fmt.Errorf("overload submission failed outside admission: %w", r.err)
		case r.shed:
			shed++
			shedTotal += r.dur
			if r.dur > shedMax {
				shedMax = r.dur
			}
			retryAfters = append(retryAfters, r.retryAfter)
		default:
			accepted++
		}
	}
	h1, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("flood: %d submissions → %d accepted, %d shed (429)\n", n, accepted, shed)
	if shed > 0 {
		fmt.Printf("shed latency: mean %v, max %v\n", shedTotal/time.Duration(shed), shedMax)
		// The Retry-After distribution is the server's backpressure signal:
		// under a deepening backlog the hints should climb, and a flat
		// all-zero line means the header is missing — a protocol bug.
		sort.Slice(retryAfters, func(i, j int) bool { return retryAfters[i] < retryAfters[j] })
		p := func(q float64) time.Duration {
			i := int(q * float64(len(retryAfters)-1))
			return retryAfters[i]
		}
		fmt.Printf("retry-after hints: p50 %v, p95 %v, max %v\n",
			p(0.50), p(0.95), retryAfters[len(retryAfters)-1])
	}
	fmt.Printf("healthz after:  ready=%v queue=%d/%d inflight=%dB\n", h1.Ready, h1.QueueDepth, h1.QueueCap, h1.InflightBytes)
	if shed == 0 {
		fmt.Println("note: nothing was shed — raise -overload or lower the server's -queue/-max-inflight-bytes to exercise admission")
	}
	return nil
}
