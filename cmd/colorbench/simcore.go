package main

// The -json mode: run the simulator-core perf suite (internal/bench
// simcore) and either write a fresh BENCH_simcore.json baseline or check
// the run against a committed one. `make bench-baseline` and
// `make bench-check` wrap the two invocations; CI runs the check.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/svcbench"
)

func runSimCoreJSON(ctx context.Context, outPath, checkPath string, tolerance float64) error {
	fmt.Fprintln(os.Stderr, "colorbench: running the simulator-core suite (a few seconds per workload)...")
	rep, err := bench.RunSimCore(ctx)
	if err != nil {
		return err
	}
	// The service-layer workloads ride the same report; they live in
	// internal/svcbench (importing the service from internal/bench would
	// cycle through the root package's tests).
	overload, err := svcbench.OverloadResult(ctx)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, overload)
	ingest, err := svcbench.IngestResult(ctx)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, ingest)
	printSimCore(rep)
	if checkPath != "" {
		return checkSimCore(rep, checkPath, tolerance)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "colorbench: baseline written to %s\n", outPath)
	return nil
}

func printSimCore(rep *bench.SimCoreReport) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tns/op\tallocs/op\tB/op\tallocs/round\trounds\tmsgs\tmax word bits\tcongest viol\tcolors")
	for _, r := range rep.Results {
		perRound := "n/a"
		if r.AllocsPerRound >= 0 {
			perRound = fmt.Sprintf("%.0f", r.AllocsPerRound)
		}
		colors := ""
		if r.Colors > 0 {
			colors = fmt.Sprintf("%d", r.Colors)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, perRound, r.Rounds, r.Messages,
			r.MaxWordBits, r.CongestViolations, colors)
	}
	tw.Flush()
	// Derived throughput for the ingest workloads: Messages holds exact wire
	// bytes per op there (see internal/svcbench), so MB/s and vertices/s
	// fall out of ns/op directly.
	for _, r := range rep.Results {
		if strings.HasPrefix(r.Name, "service/ingest/") && r.NsPerOp > 0 {
			secs := float64(r.NsPerOp) / 1e9
			fmt.Printf("%s: %.1f MB/s wire, %.0f vertices/s\n",
				r.Name, float64(r.Messages)/secs/(1<<20), float64(svcbench.IngestVertices)/secs)
		}
	}
}

func checkSimCore(current *bench.SimCoreReport, baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (generate one with `make bench-baseline`): %w", err)
	}
	var baseline bench.SimCoreReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	problems, notes := bench.CompareSimCore(&baseline, current, tolerance)
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "colorbench: bench-check note: %s\n", n)
	}
	if len(problems) == 0 {
		fmt.Fprintf(os.Stderr, "colorbench: bench-check OK against %s (tolerance %.0f%%)\n", baselinePath, tolerance*100)
		return nil
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "colorbench: bench-check FAIL: %s\n", p)
	}
	return fmt.Errorf("%d regression(s) against %s (refresh an intentional change with `make bench-baseline`)", len(problems), baselinePath)
}
