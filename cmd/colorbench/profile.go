package main

// The -profile mode: run the linial-10k workload (the simcore suite's
// algorithm substrate) in a loop under the CPU profiler for a fixed wall
// budget, then snapshot the heap, writing cpu.pprof and heap.pprof into
// the chosen directory. `make profile` wraps it, and CI uploads the
// directory as an artifact on pull requests, so "why did this get slower"
// always has a flame graph attached:
//
//	go tool pprof -http=:0 profiles/cpu.pprof

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/gen"
	"repro/internal/linial"
	"repro/internal/sim"
)

func runProfile(ctx context.Context, dir string, dur time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g, err := gen.NearRegular(10_000, 8, 2017)
	if err != nil {
		return err
	}
	g.CSR() // setup outside the profile, like the measured suite

	cpuPath := filepath.Join(dir, "cpu.pprof")
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	defer cpuF.Close()
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "colorbench: profiling the linial-10k workload for %v...\n", dur)
	ops := 0
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			break
		}
		if _, err := linial.Reduce(ctx, sim.Sequential, sim.NewTopology(g), int64(g.N())); err != nil {
			pprof.StopCPUProfile()
			return err
		}
		ops++
	}
	pprof.StopCPUProfile()

	heapPath := filepath.Join(dir, "heap.pprof")
	heapF, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	defer heapF.Close()
	runtime.GC() // flush dead objects so the profile shows live retention
	if err := pprof.WriteHeapProfile(heapF); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "colorbench: %d ops profiled; wrote %s and %s\n", ops, cpuPath, heapPath)
	return nil
}
