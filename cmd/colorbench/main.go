// Command colorbench regenerates the measured counterparts of the paper's
// evaluation artifacts: Table 1 (edge coloring of general graphs), Table 2
// (vertex coloring of bounded-diversity graphs), and the Section 5 theorem
// suite (Δ+o(Δ) edge coloring of bounded-arboricity graphs).
//
// Usage:
//
//	colorbench -table 1            # Table 1: ours vs previous best vs 2Δ−1
//	colorbench -table 2            # Table 2: CD-coloring vs previous best
//	colorbench -table 5            # Section 5: Thm 5.2/5.3/5.4 vs 2Δ−1
//	colorbench -table all -quick   # everything, smaller sweeps
//	colorbench -server http://localhost:8080   # drive a live colord instead
//
// The -json mode runs the simulator-core perf suite instead of the paper
// tables and emits machine-readable per-workload metrics (ns/op,
// allocs/op, allocs/round, rounds, messages, colors):
//
//	colorbench -json                             # write BENCH_simcore.json
//	colorbench -json -out -                      # write the report to stdout
//	colorbench -json -check BENCH_simcore.json   # fail on regression vs baseline
//
// `make bench-baseline` and `make bench-check` wrap the last two; CI runs
// the check on every push.
//
// The -profile mode runs the linial-10k workload under the CPU profiler
// for -profile-duration and writes cpu.pprof + heap.pprof into the given
// directory (`make profile`; CI uploads the files as a PR artifact):
//
//	colorbench -profile profiles -profile-duration 30s
//
// With -server the harness doubles as a service load generator: the same
// synthetic families are generated server-side (/v1/generate), every sweep
// runs twice so the second pass must come from the result cache, and the
// server's cache-hit counters are reported at the end.
//
// Every reported row is verified (proper coloring within the declared
// palette) before printing; the program exits non-zero otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 5, or all")
	seed := flag.Int64("seed", 1, "workload seed")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	server := flag.String("server", "", "base URL of a running colord instance; when set, colorbench becomes a load generator driving the service instead of running in-process")
	overload := flag.Int("overload", 0, "with -server: instead of the sweeps, flood the instance with this many tiny submissions (retries off) and report the accepted/shed split, shed latency, and readiness before/after")
	jsonMode := flag.Bool("json", false, "run the simulator-core perf suite and emit a machine-readable report instead of the paper tables")
	out := flag.String("out", "BENCH_simcore.json", "with -json: where to write the report (\"-\" for stdout)")
	check := flag.String("check", "", "with -json: compare the run against this baseline report instead of writing one; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "with -json -check: allowed fractional regression of ns/op and allocs/op")
	profileDir := flag.String("profile", "", "profile the linial-10k workload instead of running tables: write cpu.pprof and heap.pprof into this directory (`make profile` wraps it)")
	profileDur := flag.Duration("profile-duration", 30*time.Second, "with -profile: how long to run the workload under the CPU profiler")
	flag.Parse()

	// Ctrl-C cancels the context, which aborts in-flight simulations at
	// their next round boundary instead of killing the process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *profileDir != "" {
		if err := runProfile(ctx, *profileDir, *profileDur); err != nil {
			fmt.Fprintf(os.Stderr, "colorbench: profile: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonMode {
		if err := runSimCoreJSON(ctx, *out, *check, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "colorbench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *server != "" {
		if *overload > 0 {
			if err := runOverload(ctx, *server, *overload, 32); err != nil {
				fmt.Fprintf(os.Stderr, "colorbench: overload: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runRemote(ctx, *server, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "colorbench: remote: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() error) {
		switch *table {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "colorbench: table %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	run("1", func() error { return table1(ctx, *seed, *quick) })
	run("2", func() error { return table2(ctx, *seed, *quick) })
	run("5", func() error { return table5(ctx, *seed, *quick) })
}

func table1(ctx context.Context, seed int64, quick bool) error {
	deltas := []int{16, 32, 64}
	xs := []int{1, 2, 3}
	if quick {
		deltas = []int{16, 32}
		xs = []int{1, 2}
	}
	var rows [][]string
	for _, x := range xs {
		for _, d := range deltas {
			// Both parameter profiles must be non-degenerate: ours needs
			// Δ ≥ 2^{x+1}, the [7] emulation needs Δ ≥ 2^{x+2}.
			if d < 1<<(x+2) {
				continue
			}
			row, err := bench.RunTable1Row(ctx, 8*d, d, x, seed)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				strconv.Itoa(x), strconv.Itoa(row.Delta), strconv.Itoa(row.N),
				fmt.Sprintf("%d", row.Ours.Colors), strconv.Itoa(row.Ours.Rounds),
				fmt.Sprintf("%d", row.Previous.Colors), strconv.Itoa(row.Previous.Rounds),
				fmt.Sprintf("%d", row.TwoDelta.Colors), strconv.Itoa(row.TwoDelta.Rounds),
				strconv.Itoa(row.Greedy.Used),
			})
		}
	}
	return bench.RenderTable(os.Stdout,
		"Table 1 (measured): edge coloring of general graphs — colors are palette bounds, rounds are executed LOCAL rounds",
		[]string{"x", "Δ", "n", "ours[2^{x+1}Δ]", "rounds", "prev[(2^{x+1}+ε)Δ]", "rounds", "2Δ−1", "rounds", "greedy used"},
		rows)
}

func table2(ctx context.Context, seed int64, quick bool) error {
	// S is driven by the hyperedge count: more hyperedges per vertex →
	// larger cliques in the line graph. S must be large enough that the two
	// parameter profiles t = S^{1/(x+1)} vs S^{1/(x+2)} actually differ at
	// every x in the sweep.
	type cfg struct{ nv, ne int }
	cfgs := []cfg{{40, 200}, {40, 400}, {40, 800}}
	xs := []int{1, 2, 3}
	if quick {
		cfgs = []cfg{{40, 100}, {40, 200}}
		xs = []int{1, 2}
	}
	var rows [][]string
	for _, x := range xs {
		for _, c := range cfgs {
			row, err := bench.RunTable2Row(ctx, c.nv, 3, c.ne, x, seed)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				strconv.Itoa(x), strconv.Itoa(row.D), strconv.Itoa(row.S), strconv.Itoa(row.N),
				fmt.Sprintf("%d", row.Ours.Colors), strconv.Itoa(row.Ours.Rounds),
				fmt.Sprintf("%d", row.Previous.Colors), strconv.Itoa(row.Previous.Rounds),
				strconv.Itoa(row.Greedy.Used),
			})
		}
	}
	return bench.RenderTable(os.Stdout,
		"Table 2 (measured): vertex coloring of bounded-diversity graphs (line graphs of 3-uniform hypergraphs, D ≤ 3)",
		[]string{"x", "D", "S", "n", "ours[D^{x+1}S]", "rounds", "prev[(D^{x+1}+ε)S]", "rounds", "greedy used"},
		rows)
}

func table5(ctx context.Context, seed int64, quick bool) error {
	type cfg struct{ n, a, hub int }
	cfgs := []cfg{{600, 2, 200}, {1200, 2, 500}, {2400, 2, 1200}}
	if quick {
		cfgs = []cfg{{400, 2, 150}}
	}
	var rows [][]string
	for _, c := range cfgs {
		row, err := bench.RunSparseRow(ctx, c.n, c.a, c.hub, seed)
		if err != nil {
			return err
		}
		for _, m := range row.Rows {
			rows = append(rows, []string{
				strconv.Itoa(row.N), strconv.Itoa(row.Delta), strconv.Itoa(row.Arb),
				m.Algorithm, fmt.Sprintf("%d", m.Colors), strconv.Itoa(m.Used),
				strconv.Itoa(m.Rounds), fmt.Sprintf("%d", m.Messages),
			})
		}
	}
	return bench.RenderTable(os.Stdout,
		"Section 5 (measured): Δ+o(Δ) edge coloring of bounded-arboricity graphs (union of a forests + hub)",
		[]string{"n", "Δ", "a≤", "algorithm", "palette", "used", "rounds", "messages"},
		rows)
}
