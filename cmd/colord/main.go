// Command colord is the coloring daemon: an HTTP service that runs the
// distcolor algorithms behind a job queue, a worker pool, and a
// content-addressed result cache (see internal/service and DESIGN.md §6).
// Requests and results travel as JSON by default or as the binary wire
// codec (Content-Type/Accept application/vnd.distcolor.v1+bin, DESIGN.md
// §11); graphs too large for -max-inflight-bytes are ingested as a chunked
// binary stream admitted edge-chunk by edge-chunk.
//
// Quickstart (see README.md for the full walk-through):
//
//	colord -addr :8080 &
//
//	# submit a 5-cycle for the adaptive Δ+o(Δ) edge coloring
//	curl -s localhost:8080/v1/jobs -d '{
//	  "algorithm": "edge/sparse",
//	  "graph": {"n": 5, "edges": [[0,1],[1,2],[2,3],[3,4],[4,0]]}
//	}'
//	# → {"id":"j1","state":"queued",...}
//
//	curl -s localhost:8080/v1/jobs/j1           # poll status
//	curl -s localhost:8080/v1/jobs/j1/result    # fetch the coloring
//	curl -s localhost:8080/v1/jobs/j1/trace     # stream rounds + lifecycle spans
//	curl -s localhost:8080/v1/metrics           # JSON counters
//	curl -s localhost:8080/metrics              # Prometheus exposition
//	curl -s localhost:8080/v1/healthz           # readiness (503 = shedding)
//
// Submitting the same graph (or any isomorphic relabeling of it) again is
// answered from the result cache without re-simulation.
//
// With -data-dir the daemon is durable: every submission and result is
// journaled to a write-ahead job store, and a restart (or crash) replays
// the journal — finished jobs keep serving their results, interrupted jobs
// re-run. -max-inflight-bytes bounds accepted-but-unfinished work; beyond
// it buffered submissions are shed with 429 + Retry-After instead of
// growing the queue without bound, while a chunked binary stream is still
// admitted one edge chunk at a time. See DESIGN.md §6 and §11.
//
// Observability (DESIGN.md §9): GET /metrics serves the Prometheus text
// exposition, every job's trace stream ends with its admit→serve span tree,
// logs are structured (log/slog, text to stderr; -log-level picks the
// floor), and -pprof mounts net/http/pprof under /debug/pprof/ for live
// CPU/heap profiling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	queue := flag.Int("queue", 0, "work queue depth (0 = default 256)")
	cache := flag.Int("cache", 0, "result cache entries (0 = default 512, negative disables)")
	maxN := flag.Int("max-vertices", 0, "reject graphs with more vertices (0 = default 200000, negative disables)")
	maxM := flag.Int("max-edges", 0, "reject graphs with more edges (0 = default 2000000, negative disables)")
	parallel := flag.Bool("parallel", false, "run every job on the goroutine-sharded simulator engine (results are bit-identical; wall-clock policy only)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead job store; submissions and results survive crashes and are replayed on restart (empty = memory-only)")
	maxInflight := flag.Int64("max-inflight-bytes", 0, "admission bound on the estimated bytes of accepted-but-unfinished jobs; submissions beyond it get 429 + Retry-After (0 = default 256 MiB, negative disables)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job execution deadline; a run over it terminates in state deadline_exceeded, a request's deadline_ms tightens it (0 = unbounded)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling aid; keep off on untrusted networks)")
	logLevel := flag.String("log-level", "info", "log floor: debug|info|warn|error (debug includes per-request lines)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "colord: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := service.NewServer(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		MaxVertices:      *maxN,
		MaxEdges:         *maxM,
		Parallel:         *parallel,
		DataDir:          *dataDir,
		MaxInflightBytes: *maxInflight,
		JobTimeout:       *jobTimeout,
		Logger:           logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		// Explicit routes rather than the net/http/pprof init() side effect:
		// the profiler is opt-in and never leaks onto DefaultServeMux.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Info("serving", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache, "pprof", *pprofOn)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	srv.Close()
	logger.Info("drained")
}
