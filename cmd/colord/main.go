// Command colord is the coloring daemon: an HTTP/JSON service that runs the
// distcolor algorithms behind a job queue, a worker pool, and a
// content-addressed result cache (see internal/service and DESIGN.md §6).
//
// Quickstart (see README.md for the full walk-through):
//
//	colord -addr :8080 &
//
//	# submit a 5-cycle for the adaptive Δ+o(Δ) edge coloring
//	curl -s localhost:8080/v1/jobs -d '{
//	  "algorithm": "edge/sparse",
//	  "graph": {"n": 5, "edges": [[0,1],[1,2],[2,3],[3,4],[4,0]]}
//	}'
//	# → {"id":"j1","state":"queued",...}
//
//	curl -s localhost:8080/v1/jobs/j1           # poll status
//	curl -s localhost:8080/v1/jobs/j1/result    # fetch the coloring
//	curl -s localhost:8080/v1/jobs/j1/trace     # stream the round trace
//	curl -s localhost:8080/v1/metrics           # cache hits, rounds, ...
//
// Submitting the same graph (or any isomorphic relabeling of it) again is
// answered from the result cache without re-simulation.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	queue := flag.Int("queue", 0, "work queue depth (0 = default 256)")
	cache := flag.Int("cache", 0, "result cache entries (0 = default 512, negative disables)")
	maxN := flag.Int("max-vertices", 0, "reject graphs with more vertices (0 = default 200000, negative disables)")
	maxM := flag.Int("max-edges", 0, "reject graphs with more edges (0 = default 2000000, negative disables)")
	parallel := flag.Bool("parallel", false, "run every job on the goroutine-sharded simulator engine (results are bit-identical; wall-clock policy only)")
	flag.Parse()

	srv := service.NewServer(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		MaxVertices:  *maxN,
		MaxEdges:     *maxM,
		Parallel:     *parallel,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("colord: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("colord: serving on %s (workers=%d queue=%d cache=%d)",
		*addr, *workers, *queue, *cache)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("colord: %v", err)
	}
	srv.Close()
	log.Printf("colord: drained")
}
