// Command colorviz regenerates the structural content of the paper's three
// figures as Graphviz DOT (to stdout) plus a short summary of the
// structural invariants (to stderr):
//
//	colorviz -figure 1   # clique connector of two cliques sharing a vertex, t=4
//	colorviz -figure 2   # edge connector with t=3
//	colorviz -figure 3   # orientation connector with √-groups
//
// Pipe the output through `dot -Tpng` to render. The rendering logic lives
// in internal/figures, where golden tests pin both the DOT structure and
// the invariants.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	figure := flag.Int("figure", 1, "which figure to regenerate (1, 2, or 3)")
	flag.Parse()
	res, err := figures.Figure(*figure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "colorviz: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, res.Summary)
	fmt.Print(res.DOT)
}
