// Command localsim runs any registered distcolor algorithm on a
// user-supplied graph and reports the verified result as JSON.
//
// Usage:
//
//	localsim -list                                  # discover algorithms + parameter schemas
//	localsim -algo edge/star -x 1 < graph.edges
//	localsim -algo edge/sparse -arboricity 3 -in mygraph.edges
//	localsim -algo edge/sparse/thm5.3 -param q=2.5 -in mygraph.edges
//	localsim -algo vertex/cd -line -in mygraph.edges
//	localsim -algo edge/greedy -in mygraph.edges -colors out.txt
//
// The input format is a whitespace edge list with an optional "n <count>"
// header; see ReadEdgeList. -algo takes any registered algorithm name
// (see -list); the short aliases star, greedy, sparse, delta1 and cdline
// from earlier releases keep working. -line runs a vertex algorithm on the
// line graph of the input (with its canonical diversity-2 clique cover),
// which edge-colors the input graph; cover-requiring algorithms
// (vertex/cd) need it when the input is a plain edge list.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	distcolor "repro"
)

type output struct {
	Algorithm string           `json:"algorithm"`
	N         int              `json:"n"`
	M         int              `json:"m"`
	MaxDegree int              `json:"maxDegree"`
	Palette   int64            `json:"palette"`
	Used      int              `json:"colorsUsed"`
	Rounds    int              `json:"rounds"`
	Messages  int64            `json:"messages"`
	Target    string           `json:"target"` // "edges" or "vertices"
	Params    distcolor.Params `json:"params,omitempty"`
}

// aliases maps the pre-registry CLI names onto registry names; cdline
// additionally implies -line.
var aliases = map[string]struct {
	name string
	line bool
}{
	"star":   {name: distcolor.AlgoEdgeStar},
	"greedy": {name: distcolor.AlgoEdgeGreedy},
	"sparse": {name: distcolor.AlgoEdgeSparse},
	"delta1": {name: distcolor.AlgoVertexDelta1},
	"cdline": {name: distcolor.AlgoVertexCD, line: true},
}

// paramFlags collects repeated -param name=value flags.
type paramFlags map[string]float64

func (p paramFlags) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %w", s, err)
	}
	p[k] = f
	return nil
}

func main() {
	params := paramFlags{}
	algo := flag.String("algo", "edge/star", "registered algorithm name (see -list) or legacy alias (star, greedy, sparse, delta1, cdline)")
	x := flag.Int("x", 0, "recursion depth (shorthand for -param x=…; 0 = algorithm default)")
	arb := flag.Int("arboricity", 0, "arboricity bound (shorthand for -param arboricity=…; 0 = estimate from degeneracy)")
	q := flag.Float64("q", 0, "Section 5 threshold multiplier (shorthand for -param q=…; 0 = default)")
	flag.Var(params, "param", "algorithm parameter as name=value, repeatable (schema: localsim -list)")
	line := flag.Bool("line", false, "run a vertex algorithm on the line graph of the input (edge-colors the input graph)")
	in := flag.String("in", "", "input edge list (default stdin)")
	colorsOut := flag.String("colors", "", "optional file to write the coloring (one color per line)")
	parallel := flag.Bool("parallel", false, "use the goroutine engine")
	list := flag.Bool("list", false, "list the registered algorithms with their parameter schemas and exit")
	flag.Parse()

	if *list {
		printRegistry(os.Stdout)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	shorthand := distcolor.Params{"x": float64(*x), "arboricity": float64(*arb), "q": *q}
	if err := run(ctx, *algo, distcolor.Params(params), shorthand, *in, *colorsOut, *parallel, *line); err != nil {
		fmt.Fprintf(os.Stderr, "localsim: %v\n", err)
		os.Exit(1)
	}
}

// printRegistry renders the algorithm registry as a discovery table.
func printRegistry(w io.Writer) {
	for _, a := range distcolor.DescribeAlgorithms() {
		fmt.Fprintf(w, "%-22s %-6s palette %s\n", a.Name, a.Kind, a.Palette)
		if a.Doc != "" {
			fmt.Fprintf(w, "    %s\n", a.Doc)
		}
		if a.NeedsCover {
			fmt.Fprintf(w, "    needs a clique cover (use -line to derive one from the line graph)\n")
		}
		for _, p := range a.Params {
			fmt.Fprintf(w, "    -param %s=<%s>  default %v, range [%v, %v]  %s\n",
				p.Name, p.Type, p.Default, p.Min, p.Max, p.Doc)
		}
	}
}

func run(ctx context.Context, algo string, params, shorthand distcolor.Params, in, colorsOut string, parallel, line bool) error {
	if al, ok := aliases[algo]; ok {
		line = line || al.line
		algo = al.name
	}
	a, ok := distcolor.LookupAlgorithm(algo)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (try -list)", algo)
	}
	// Like the wire codec, the shorthand flags (-x, -arboricity, -q) keep
	// their pre-registry tolerance: merged only when the algorithm's
	// schema declares the parameter, ignored otherwise. Explicit -param
	// entries stay strict.
	declared := map[string]bool{}
	for _, p := range a.Params {
		declared[p.Name] = true
	}
	for name, v := range shorthand {
		if v != 0 && declared[name] {
			params[name] = v
		}
	}

	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := distcolor.ReadEdgeList(r)
	if err != nil {
		return err
	}

	opt := distcolor.Options{Parallel: parallel}
	out := output{N: g.N(), M: g.M(), MaxDegree: g.MaxDegree()}
	target := map[distcolor.Kind]string{distcolor.KindEdge: "edges", distcolor.KindVertex: "vertices"}[a.Kind]

	// -line lifts the workload onto the line graph: any vertex algorithm
	// then edge-colors the input, and the canonical diversity-2 clique
	// cover satisfies cover-requiring algorithms.
	runGraph := g
	if line {
		if a.Kind != distcolor.KindVertex {
			return fmt.Errorf("-line needs a vertex algorithm, %s colors %s", algo, a.Kind)
		}
		lg, cov, _, lcErr := distcolor.LineCover(g)
		if lcErr != nil {
			return lcErr
		}
		runGraph = lg
		opt.Cover = cov
		target = "edges (via line graph)"
	} else if a.NeedsCover {
		return fmt.Errorf("%s requires a clique cover: pass -line to derive one from the line graph", algo)
	}

	col, err := distcolor.Run(ctx, runGraph, algo, params, opt)
	if err != nil {
		return err
	}
	out.Algorithm = col.Algorithm
	out.Palette = col.Palette
	out.Rounds = col.Stats.Rounds
	out.Messages = col.Stats.Messages
	out.Target = target
	out.Params = col.Params
	out.Used = countDistinct(col.Colors)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if colorsOut != "" {
		var sb strings.Builder
		for _, c := range col.Colors {
			sb.WriteString(strconv.FormatInt(c, 10))
			sb.WriteByte('\n')
		}
		return os.WriteFile(colorsOut, []byte(sb.String()), 0o644)
	}
	return nil
}

func countDistinct(colors []int64) int {
	seen := make(map[int64]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}
