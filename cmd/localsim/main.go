// Command localsim runs any distcolor algorithm on a user-supplied graph
// and reports the verified result as JSON.
//
// Usage:
//
//	localsim -algo star -x 1 < graph.edges
//	localsim -algo sparse -arboricity 3 -in mygraph.edges
//	localsim -algo greedy -in mygraph.edges -colors out.txt
//
// The input format is a whitespace edge list with an optional "n <count>"
// header; see ReadEdgeList. Algorithms: star (2^{x+1}Δ edge coloring),
// greedy (2Δ−1 edge coloring), sparse (Δ+o(Δ) edge coloring, needs
// -arboricity), delta1 ((Δ+1) vertex coloring), cdline (CD vertex coloring
// of the line graph, i.e. D=2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	distcolor "repro"
)

type output struct {
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	MaxDegree int    `json:"maxDegree"`
	Palette   int64  `json:"palette"`
	Used      int    `json:"colorsUsed"`
	Rounds    int    `json:"rounds"`
	Messages  int64  `json:"messages"`
	Target    string `json:"target"` // "edges" or "vertices"
}

func main() {
	algo := flag.String("algo", "star", "algorithm: star, greedy, sparse, delta1, cdline")
	x := flag.Int("x", 1, "recursion depth for star/cdline")
	arb := flag.Int("arboricity", 0, "arboricity bound for sparse (0: estimate from degeneracy)")
	in := flag.String("in", "", "input edge list (default stdin)")
	colorsOut := flag.String("colors", "", "optional file to write the coloring (one color per line)")
	parallel := flag.Bool("parallel", false, "use the goroutine engine")
	flag.Parse()

	if err := run(*algo, *x, *arb, *in, *colorsOut, *parallel); err != nil {
		fmt.Fprintf(os.Stderr, "localsim: %v\n", err)
		os.Exit(1)
	}
}

func run(algo string, x, arb int, in, colorsOut string, parallel bool) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := distcolor.ReadEdgeList(r)
	if err != nil {
		return err
	}
	opt := distcolor.Options{Parallel: parallel}
	out := output{N: g.N(), M: g.M(), MaxDegree: g.MaxDegree()}
	var colors []int64

	switch algo {
	case "star":
		res, err := distcolor.EdgeColorStar(g, x, opt)
		if err != nil {
			return err
		}
		fill(&out, res.Algorithm, res.Palette, res.Stats.Rounds, res.Stats.Messages, "edges")
		colors = res.Colors
		if err := distcolor.CheckEdgeColoring(g, colors, res.Palette); err != nil {
			return err
		}
	case "greedy":
		res, err := distcolor.EdgeColorGreedy(g, opt)
		if err != nil {
			return err
		}
		fill(&out, res.Algorithm, res.Palette, res.Stats.Rounds, res.Stats.Messages, "edges")
		colors = res.Colors
		if err := distcolor.CheckEdgeColoring(g, colors, res.Palette); err != nil {
			return err
		}
	case "sparse":
		if arb <= 0 {
			arb = distcolor.ArboricityUpperBound(g)
		}
		res, err := distcolor.EdgeColorSparse(g, arb, opt)
		if err != nil {
			return err
		}
		fill(&out, res.Algorithm, res.Palette, res.Stats.Rounds, res.Stats.Messages, "edges")
		colors = res.Colors
		if err := distcolor.CheckEdgeColoring(g, colors, res.Palette); err != nil {
			return err
		}
	case "delta1":
		res, err := distcolor.VertexColor(g, opt)
		if err != nil {
			return err
		}
		fill(&out, res.Algorithm, res.Palette, res.Stats.Rounds, res.Stats.Messages, "vertices")
		colors = res.Colors
		if err := distcolor.CheckVertexColoring(g, colors, res.Palette); err != nil {
			return err
		}
	case "cdline":
		lg, cov, _, err := distcolor.LineCover(g)
		if err != nil {
			return err
		}
		res, err := distcolor.VertexColorCD(lg, cov, x, opt)
		if err != nil {
			return err
		}
		fill(&out, res.Algorithm, res.Palette, res.Stats.Rounds, res.Stats.Messages, "edges (via line graph)")
		colors = res.Colors
		if err := distcolor.CheckVertexColoring(lg, colors, res.Palette); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	out.Used = countDistinct(colors)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if colorsOut != "" {
		var sb strings.Builder
		for _, c := range colors {
			sb.WriteString(strconv.FormatInt(c, 10))
			sb.WriteByte('\n')
		}
		return os.WriteFile(colorsOut, []byte(sb.String()), 0o644)
	}
	return nil
}

func fill(o *output, algo string, palette int64, rounds int, messages int64, target string) {
	o.Algorithm = algo
	o.Palette = palette
	o.Rounds = rounds
	o.Messages = messages
	o.Target = target
}

func countDistinct(colors []int64) int {
	seen := make(map[int64]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}
