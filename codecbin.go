package distcolor

// The binary wire codec: every value is one length-prefixed, CRC-framed
// record, deliberately reusing the colord WAL's framing discipline
// (internal/service/store.go) so one set of torn/corrupt-read semantics
// covers disk and wire alike.
//
// Frame layout (all integers little-endian):
//
//	[len  uint32]  payload length (the 8 prefix bytes excluded)
//	[crc  uint32]  CRC-32 (IEEE) of the payload
//	[payload]
//
// Payload header (6 bytes, covered by the CRC):
//
//	[magic 0xDC][version][kind][reserved 0][flags uint16]
//
// The version byte gates the whole body layout; a decoder rejects versions
// it does not know. The flags word advertises the feature set the encoder
// used — today the two edge-array encodings below — and a decoder rejects
// any flag bit it does not know, so a future encoder can extend the format
// and old decoders fail loudly instead of misparsing.
//
// Bodies are built from five primitives: unsigned varints, zigzag varints
// (every int field, so the encoding is total), length-prefixed strings,
// fixed 8-byte float64 bits, and one-byte bools. Params maps are written
// in sorted key order, so encoding is deterministic. Edge arrays — the
// dominant bytes of any real request — are encoded in the spec's own edge
// order (edge identifiers index Response.Colors, so reordering is not an
// option) under one of two modes, whichever is smaller for the actual
// list: fixed-width bit-packed endpoints (⌈log₂ n⌉ bits each), or
// per-edge zigzag varint deltas against the previous edge, which wins on
// sorted or locally-ordered lists. Clique covers delta-encode within each
// clique.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"sort"
)

// Frame constants. frameMaxBytes bounds a single payload: far above any
// graph the service accepts (2M edges ≈ 17MB) yet small enough that a
// corrupt length prefix cannot drive a multi-gigabyte allocation.
const (
	frameMagic      = 0xDC
	frameVersion    = 1
	framePrefixLen  = 8 // len + crc
	frameHeaderLen  = 6 // magic, version, kind, reserved, flags
	frameMaxBytes   = 1 << 30
	frameMinPayload = frameHeaderLen
)

// Frame kinds: the five wire types plus the three chunked-ingest stream
// frames (codecstream.go).
const (
	kindGraphSpec byte = 1
	kindRequest   byte = 2
	kindResponse  byte = 3
	kindColoring  byte = 4
	kindJobRecord byte = 5

	kindStreamHeader byte = 6
	kindEdgeChunk    byte = 7
	kindStreamEnd    byte = 8
)

// Feature flags. An encoder sets the bit for every edge-array mode the
// frame's body uses; decoders reject unknown bits.
const (
	flagPackedEdges uint16 = 1 << 0
	flagDeltaEdges  uint16 = 1 << 1
	// flagDeadlineMS marks a body whose Request carries the deadline_ms
	// field (appended after Parallel). Gating the field on a flag keeps
	// deadline-free requests byte-identical to the pre-deadline wire, and
	// makes deadline-carrying frames fail loudly on older decoders instead
	// of misparsing.
	flagDeadlineMS uint16 = 1 << 2
	// flagJobAttempts marks a JobRecord body carrying the attempts counter
	// (appended after CacheHit), under the same compatibility discipline.
	flagJobAttempts uint16 = 1 << 3

	flagsKnown = flagPackedEdges | flagDeltaEdges | flagDeadlineMS | flagJobAttempts
)

// Edge-array modes (the body-level tag; the frame flags advertise the
// union of modes used).
const (
	edgeModePacked byte = 0
	edgeModeDelta  byte = 1
)

// packedMaxBits caps the fixed-width mode's per-endpoint width so the
// bit-packer's 64-bit accumulator never overflows; wider graphs (which do
// not exist — vertex ids are ints) fall back to delta mode.
const packedMaxBits = 56

type binaryCodec struct{}

func (binaryCodec) Name() string        { return "binary" }
func (binaryCodec) ContentType() string { return ContentTypeBinary }

func (binaryCodec) Encode(v any) ([]byte, error) {
	switch t := v.(type) {
	case *GraphSpec:
		e := newBinEnc(kindGraphSpec, 32+10*len(t.Edges))
		e.graphSpec(t)
		return e.frame(), nil
	case GraphSpec:
		return CodecBinary.Encode(&t)
	case *Request:
		e := newBinEnc(kindRequest, 64+10*len(t.Graph.Edges))
		e.request(t)
		return e.frame(), nil
	case Request:
		return CodecBinary.Encode(&t)
	case *Response:
		e := newBinEnc(kindResponse, 64+3*len(t.Colors))
		e.response(t)
		return e.frame(), nil
	case Response:
		return CodecBinary.Encode(&t)
	case *Coloring:
		e := newBinEnc(kindColoring, 64+3*len(t.Colors))
		e.coloring(t)
		return e.frame(), nil
	case Coloring:
		return CodecBinary.Encode(&t)
	case *JobRecord:
		est := 96
		if t.Request != nil {
			est += 64 + 10*len(t.Request.Graph.Edges)
		}
		if t.Response != nil {
			est += 64 + 3*len(t.Response.Colors)
		}
		e := newBinEnc(kindJobRecord, est)
		e.jobRecord(t)
		return e.frame(), nil
	case JobRecord:
		return CodecBinary.Encode(&t)
	}
	_, err := wireKindOf(v)
	if err == nil {
		err = fmt.Errorf("distcolor: binary codec cannot encode %T", v)
	}
	return nil, err
}

func (binaryCodec) Decode(data []byte, v any) error {
	kind, err := wireKindOf(v)
	if err != nil {
		return err
	}
	body, flags, err := decodeFrame(data, kind)
	if err != nil {
		return err
	}
	d := &binDec{buf: body, flags: flags}
	switch t := v.(type) {
	case *GraphSpec:
		*t = d.graphSpec()
	case *Request:
		*t = d.request()
	case *Response:
		*t = d.response()
	case *Coloring:
		*t = d.coloring()
	case *JobRecord:
		*t = d.jobRecord()
	default:
		return fmt.Errorf("distcolor: binary codec cannot decode into %T (need a pointer)", v)
	}
	return d.finish()
}

// --- framing ---

// newBinEnc starts a frame with room reserved for the prefix and payload
// header; frame() seals it in place, so a whole encode is one allocation
// (plus growth).
func newBinEnc(kind byte, sizeHint int) *binEnc {
	buf := make([]byte, framePrefixLen+frameHeaderLen, framePrefixLen+frameHeaderLen+sizeHint)
	return &binEnc{buf: buf, kind: kind}
}

type binEnc struct {
	buf   []byte
	kind  byte
	flags uint16
}

// frame seals the record: fills the payload header, then the length and
// CRC prefix.
func (e *binEnc) frame() []byte {
	payload := e.buf[framePrefixLen:]
	payload[0] = frameMagic
	payload[1] = frameVersion
	payload[2] = e.kind
	payload[3] = 0
	binary.LittleEndian.PutUint16(payload[4:], e.flags)
	binary.LittleEndian.PutUint32(e.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.buf[4:], crc32.ChecksumIEEE(payload))
	return e.buf
}

// decodeFrame validates one self-contained frame (no trailing bytes) and
// returns its body and feature flags.
func decodeFrame(data []byte, wantKind byte) ([]byte, uint16, error) {
	if len(data) < framePrefixLen+frameMinPayload {
		return nil, 0, fmt.Errorf("distcolor: frame truncated: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > frameMaxBytes {
		return nil, 0, fmt.Errorf("distcolor: frame payload %d bytes exceeds limit %d", n, frameMaxBytes)
	}
	if int(n) != len(data)-framePrefixLen {
		return nil, 0, fmt.Errorf("distcolor: frame length %d does not match %d payload bytes", n, len(data)-framePrefixLen)
	}
	payload := data[framePrefixLen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[4:8]); got != want {
		return nil, 0, fmt.Errorf("distcolor: frame CRC mismatch (corrupt or torn record)")
	}
	return checkPayloadHeader(payload, wantKind)
}

// checkPayloadHeader validates magic/version/flags and the expected kind,
// returning the body after the header and the frame's feature flags (they
// gate optional body fields, so the decoder needs them).
func checkPayloadHeader(payload []byte, wantKind byte) ([]byte, uint16, error) {
	if len(payload) < frameHeaderLen {
		return nil, 0, fmt.Errorf("distcolor: frame payload %d bytes, below %d-byte header", len(payload), frameHeaderLen)
	}
	if payload[0] != frameMagic {
		return nil, 0, fmt.Errorf("distcolor: bad frame magic 0x%02x", payload[0])
	}
	if payload[1] != frameVersion {
		return nil, 0, fmt.Errorf("distcolor: unsupported frame version %d (this decoder speaks %d)", payload[1], frameVersion)
	}
	if payload[3] != 0 {
		return nil, 0, fmt.Errorf("distcolor: nonzero reserved frame byte 0x%02x", payload[3])
	}
	flags := binary.LittleEndian.Uint16(payload[4:6])
	if flags&^flagsKnown != 0 {
		return nil, 0, fmt.Errorf("distcolor: unknown frame feature flags 0x%04x (this decoder knows 0x%04x)", flags, flagsKnown)
	}
	if payload[2] != wantKind {
		return nil, 0, fmt.Errorf("distcolor: frame kind %d, want %d", payload[2], wantKind)
	}
	return payload[frameHeaderLen:], flags, nil
}

// --- primitives ---

func zigzag(v int64) uint64   { return uint64(v)<<1 ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen is the encoded size of v, for the edge-mode sizing pass.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func (e *binEnc) uv(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *binEnc) zig(v int64)  { e.uv(zigzag(v)) }
func (e *binEnc) byte1(b byte) { e.buf = append(e.buf, b) }

func (e *binEnc) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *binEnc) f64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

func (e *binEnc) boolb(b bool) {
	if b {
		e.byte1(1)
	} else {
		e.byte1(0)
	}
}

// binDec decodes a frame body with a sticky error: every read after a
// failure is a no-op returning zero values, and finish() reports the first
// failure (or trailing garbage).
type binDec struct {
	buf   []byte
	off   int
	flags uint16 // frame feature flags; gate optional body fields
	err   error
}

func (d *binDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("distcolor: binary decode: "+format, args...)
	}
}

func (d *binDec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("distcolor: binary decode: %d trailing bytes after body", len(d.buf)-d.off)
	}
	return nil
}

func (d *binDec) remaining() int { return len(d.buf) - d.off }

func (d *binDec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *binDec) zig() int64 { return unzigzag(d.uv()) }

// intv reads a zigzag varint that must fit in an int.
func (d *binDec) intv() int {
	v := d.zig()
	if int64(int(v)) != v {
		d.fail("value %d overflows int", v)
		return 0
	}
	return int(v)
}

func (d *binDec) byte1() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated body at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *binDec) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.remaining())
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *binDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return f
}

func (d *binDec) boolb() bool {
	switch d.byte1() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte at offset %d", d.off-1)
		return false
	}
}

// --- edge arrays ---

// packedWidth is the fixed per-endpoint bit width for an n-vertex graph.
func packedWidth(n int) int {
	b := bits.Len(uint(n - 1))
	if b < 1 {
		b = 1
	}
	return b
}

// edgesFitPacked reports whether every endpoint is a valid [0,n) vertex id
// — out-of-range endpoints (a spec whose Build would fail anyway) must
// round-trip faithfully, which only delta mode can do.
func edgesFitPacked(n int, edges [][2]int) bool {
	if n < 1 || packedWidth(n) > packedMaxBits {
		return false
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return false
		}
	}
	return true
}

// deltaEdgesLen is the exact encoded size of the delta mode, for the
// mode-picking pass.
func deltaEdgesLen(edges [][2]int) int {
	var prevU, prevV int64
	total := 0
	for _, e := range edges {
		u, v := int64(e[0]), int64(e[1])
		total += uvarintLen(zigzag(u-prevU)) + uvarintLen(zigzag(v-prevV))
		prevU, prevV = u, v
	}
	return total
}

// edges encodes one edge array: count, mode, data. The mode is chosen by
// exact size — one cheap sizing pass — so the encoder output is a pure
// function of the input, never of heuristics that might drift.
func (e *binEnc) edges(n int, edges [][2]int) {
	e.uv(uint64(len(edges)))
	if len(edges) == 0 {
		e.byte1(edgeModeDelta)
		e.flags |= flagDeltaEdges
		return
	}
	mode := edgeModeDelta
	if edgesFitPacked(n, edges) {
		b := packedWidth(n)
		packed := (2*b*len(edges) + 7) / 8
		if packed < deltaEdgesLen(edges) {
			mode = edgeModePacked
		}
	}
	e.byte1(mode)
	if mode == edgeModePacked {
		e.flags |= flagPackedEdges
		e.packedEdges(n, edges)
		return
	}
	e.flags |= flagDeltaEdges
	e.deltaEdges(edges)
}

func (e *binEnc) packedEdges(n int, edges [][2]int) {
	b := uint(packedWidth(n))
	var acc uint64
	var nbits uint
	put := func(v uint64) {
		acc |= v << nbits
		nbits += b
		for nbits >= 8 {
			e.buf = append(e.buf, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	for _, ed := range edges {
		put(uint64(ed[0]))
		put(uint64(ed[1]))
	}
	if nbits > 0 {
		e.buf = append(e.buf, byte(acc))
	}
}

func (e *binEnc) deltaEdges(edges [][2]int) {
	var prevU, prevV int64
	for _, ed := range edges {
		u, v := int64(ed[0]), int64(ed[1])
		e.zig(u - prevU)
		e.zig(v - prevV)
		prevU, prevV = u, v
	}
}

// edges decodes one edge array; n is the vertex count governing the packed
// width. Lengths are validated against the remaining bytes before any
// allocation, so a corrupt count cannot drive a huge make.
func (d *binDec) edges(n int) [][2]int {
	m64 := d.uv()
	if d.err != nil {
		return nil
	}
	if m64 > uint64(frameMaxBytes) || int64(int(m64)) != int64(m64) {
		d.fail("edge count %d out of range", m64)
		return nil
	}
	m := int(m64)
	mode := d.byte1()
	if d.err != nil {
		return nil
	}
	switch mode {
	case edgeModePacked:
		if n < 1 || packedWidth(n) > packedMaxBits {
			d.fail("packed edges on a %d-vertex graph", n)
			return nil
		}
		b := packedWidth(n)
		if want := (2*b*m + 7) / 8; want > d.remaining() {
			d.fail("packed edge data needs %d bytes, %d remain", want, d.remaining())
			return nil
		}
		return d.packedEdges(n, m)
	case edgeModeDelta:
		// Every delta edge is at least 2 bytes; bounding the count here
		// keeps the allocation proportional to the actual body.
		if m > 0 && m > d.remaining()/2 {
			d.fail("delta edge count %d exceeds %d remaining bytes", m, d.remaining())
			return nil
		}
		return d.deltaEdges(m)
	default:
		d.fail("unknown edge mode %d", mode)
		return nil
	}
}

func (d *binDec) packedEdges(n, m int) [][2]int {
	if m == 0 {
		return nil
	}
	b := uint(packedWidth(n))
	mask := uint64(1)<<b - 1
	edges := make([][2]int, m)
	var acc uint64
	var nbits uint
	get := func() (uint64, bool) {
		for nbits < b {
			if d.remaining() < 1 {
				d.fail("truncated packed edge data")
				return 0, false
			}
			acc |= uint64(d.buf[d.off]) << nbits
			d.off++
			nbits += 8
		}
		v := acc & mask
		acc >>= b
		nbits -= b
		return v, true
	}
	for i := 0; i < m; i++ {
		u, ok := get()
		if !ok {
			return nil
		}
		v, ok := get()
		if !ok {
			return nil
		}
		edges[i] = [2]int{int(u), int(v)}
	}
	// The tail byte's spare bits must be zero: one canonical encoding per
	// edge list, so fixtures and CRCs pin bytes, not just semantics.
	if acc != 0 {
		d.fail("nonzero spare bits after packed edge data")
		return nil
	}
	return edges
}

func (d *binDec) deltaEdges(m int) [][2]int {
	if m == 0 {
		return nil
	}
	edges := make([][2]int, m)
	var prevU, prevV int64
	for i := 0; i < m; i++ {
		du, dv := d.zig(), d.zig()
		if d.err != nil {
			return nil
		}
		u, v := prevU+du, prevV+dv
		if int64(int(u)) != u || int64(int(v)) != v {
			d.fail("edge %d endpoint overflows int", i)
			return nil
		}
		edges[i] = [2]int{int(u), int(v)}
		prevU, prevV = u, v
	}
	return edges
}

// --- composite fields ---

func (e *binEnc) cliques(cl [][]int32) {
	e.uv(uint64(len(cl)))
	for _, c := range cl {
		e.uv(uint64(len(c)))
		var prev int64
		for _, v := range c {
			e.zig(int64(v) - prev)
			prev = int64(v)
		}
	}
}

func (d *binDec) cliques() [][]int32 {
	k64 := d.uv()
	if d.err != nil || k64 == 0 {
		return nil
	}
	if k64 > uint64(d.remaining()) {
		d.fail("clique count %d exceeds %d remaining bytes", k64, d.remaining())
		return nil
	}
	cl := make([][]int32, int(k64))
	for i := range cl {
		n64 := d.uv()
		if d.err != nil {
			return nil
		}
		if n64 > uint64(d.remaining()) {
			d.fail("clique size %d exceeds %d remaining bytes", n64, d.remaining())
			return nil
		}
		c := make([]int32, int(n64))
		var prev int64
		for j := range c {
			v := prev + d.zig()
			if int64(int32(v)) != v {
				d.fail("clique %d vertex overflows int32", i)
				return nil
			}
			c[j] = int32(v)
			prev = v
		}
		cl[i] = c
	}
	return cl
}

func (e *binEnc) params(p Params) {
	e.uv(uint64(len(p)))
	if len(p) == 0 {
		return
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.str(k)
		e.f64(p[k])
	}
}

func (d *binDec) params() Params {
	k64 := d.uv()
	if d.err != nil || k64 == 0 {
		return nil
	}
	if k64 > uint64(d.remaining()) {
		d.fail("params count %d exceeds %d remaining bytes", k64, d.remaining())
		return nil
	}
	p := make(Params, int(k64))
	for i := uint64(0); i < k64; i++ {
		k := d.str()
		v := d.f64()
		if d.err != nil {
			return nil
		}
		p[k] = v
	}
	return p
}

func (e *binEnc) colors(c []int64) {
	e.uv(uint64(len(c)))
	for _, v := range c {
		e.zig(v)
	}
}

func (d *binDec) colors() []int64 {
	k64 := d.uv()
	if d.err != nil || k64 == 0 {
		return nil
	}
	if k64 > uint64(d.remaining()) {
		d.fail("color count %d exceeds %d remaining bytes", k64, d.remaining())
		return nil
	}
	c := make([]int64, int(k64))
	for i := range c {
		c[i] = d.zig()
	}
	return c
}

func (e *binEnc) stats(st Stats) {
	e.zig(int64(st.Rounds))
	e.zig(st.Messages)
	e.zig(st.Bits)
	e.zig(st.MaxMessageBits)
	e.zig(st.CongestViolations)
}

func (d *binDec) stats() Stats {
	return Stats{
		Rounds:            d.intv(),
		Messages:          d.zig(),
		Bits:              d.zig(),
		MaxMessageBits:    d.zig(),
		CongestViolations: d.zig(),
	}
}

// --- wire-type bodies ---

func (e *binEnc) graphSpec(s *GraphSpec) {
	e.zig(int64(s.N))
	e.edges(s.N, s.Edges)
	e.cliques(s.Cliques)
}

func (d *binDec) graphSpec() GraphSpec {
	n := d.intv()
	return GraphSpec{N: n, Edges: d.edges(n), Cliques: d.cliques()}
}

func (e *binEnc) request(r *Request) {
	e.str(r.Algorithm)
	e.graphSpec(&r.Graph)
	e.params(r.Params)
	e.zig(int64(r.X))
	e.zig(int64(r.Arboricity))
	e.f64(r.Q)
	e.boolb(r.Parallel)
	// The deadline rides behind its feature flag: a zero deadline encodes
	// nothing, so pre-deadline fixtures and wire bytes are unchanged.
	if r.DeadlineMS != 0 {
		e.flags |= flagDeadlineMS
		e.zig(r.DeadlineMS)
	}
}

func (d *binDec) request() Request {
	r := Request{
		Algorithm:  d.str(),
		Graph:      d.graphSpec(),
		Params:     d.params(),
		X:          d.intv(),
		Arboricity: d.intv(),
		Q:          d.f64(),
		Parallel:   d.boolb(),
	}
	if d.flags&flagDeadlineMS != 0 {
		r.DeadlineMS = d.zig()
	}
	return r
}

func (e *binEnc) response(r *Response) {
	e.str(string(r.Kind))
	e.str(r.Algorithm)
	e.colors(r.Colors)
	e.zig(r.Palette)
	e.stats(r.Stats)
	e.zig(int64(r.Delta))
	e.zig(int64(r.Arboricity))
}

func (d *binDec) response() Response {
	return Response{
		Kind:       Kind(d.str()),
		Algorithm:  d.str(),
		Colors:     d.colors(),
		Palette:    d.zig(),
		Stats:      d.stats(),
		Delta:      d.intv(),
		Arboricity: d.intv(),
	}
}

func (e *binEnc) coloring(c *Coloring) {
	e.str(string(c.Kind))
	e.colors(c.Colors)
	e.zig(c.Palette)
	e.stats(c.Stats)
	e.str(c.Algorithm)
	e.params(c.Params)
}

func (d *binDec) coloring() Coloring {
	return Coloring{
		Kind:      Kind(d.str()),
		Colors:    d.colors(),
		Palette:   d.zig(),
		Stats:     d.stats(),
		Algorithm: d.str(),
		Params:    d.params(),
	}
}

func (e *binEnc) jobRecord(jr *JobRecord) {
	e.zig(int64(jr.Schema))
	e.str(jr.ID)
	e.str(jr.State)
	e.boolb(jr.Request != nil)
	if jr.Request != nil {
		e.request(jr.Request)
	}
	e.str(jr.Error)
	e.boolb(jr.Response != nil)
	if jr.Response != nil {
		e.response(jr.Response)
	}
	e.zig(jr.WallMS)
	e.boolb(jr.CacheHit)
	if jr.Attempts != 0 {
		e.flags |= flagJobAttempts
		e.zig(jr.Attempts)
	}
}

func (d *binDec) jobRecord() JobRecord {
	jr := JobRecord{
		Schema: d.intv(),
		ID:     d.str(),
		State:  d.str(),
	}
	if d.boolb() {
		req := d.request()
		jr.Request = &req
	}
	jr.Error = d.str()
	if d.boolb() {
		resp := d.response()
		jr.Response = &resp
	}
	jr.WallMS = d.zig()
	jr.CacheHit = d.boolb()
	if d.flags&flagJobAttempts != 0 {
		jr.Attempts = d.zig()
	}
	return jr
}
