package distcolor

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hammers the binary frame decoder with arbitrary bytes:
// it must never panic or over-allocate, and anything it does accept must
// re-encode and re-decode to the same value (the decoder and encoder agree
// on one wire model). The stream reader is driven over the same input, so
// chunked-ingest parsing shares the corpus. Wired into `make fuzz`; corpus
// findings land in testdata/fuzz/FuzzDecodeFrame.
func FuzzDecodeFrame(f *testing.F) {
	seedReq := &Request{
		Algorithm: AlgoEdgeSparse,
		Graph: GraphSpec{N: 8, Edges: [][2]int{{0, 1}, {1, 2}, {5, 7}},
			Cliques: [][]int32{{0, 1, 2}, {3, 4}}},
		Params: Params{"arboricity": 2}, X: 1, Q: 2.5,
	}
	if b, err := CodecBinary.Encode(seedReq); err == nil {
		f.Add(b)
	}
	if b, err := CodecBinary.Encode(&Response{Kind: KindEdge, Algorithm: "greedy", Colors: []int64{0, 1, 2}, Palette: 3, Stats: Stats{Rounds: 2, Messages: 12}}); err == nil {
		f.Add(b)
	}
	if b, err := CodecBinary.Encode(&GraphSpec{N: 1 << 16, Edges: [][2]int{{9, 13}, {40000, 2}}}); err == nil {
		f.Add(b)
	}
	if b, err := CodecBinary.Encode(&JobRecord{Schema: JobRecordSchema, ID: "j7", State: "queued", Request: seedReq}); err == nil {
		f.Add(b)
	}
	var stream bytes.Buffer
	if WriteRequestStream(&stream, seedReq, 2) == nil {
		f.Add(stream.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if CodecBinary.Decode(data, &req) == nil {
			reencodeCheck(t, &req, func() any { return &Request{} })
		}
		var resp Response
		if CodecBinary.Decode(data, &resp) == nil {
			reencodeCheck(t, &resp, func() any { return &Response{} })
		}
		var spec GraphSpec
		if CodecBinary.Decode(data, &spec) == nil {
			reencodeCheck(t, &spec, func() any { return &GraphSpec{} })
		}
		var col Coloring
		if CodecBinary.Decode(data, &col) == nil {
			reencodeCheck(t, &col, func() any { return &Coloring{} })
		}
		var rec JobRecord
		if CodecBinary.Decode(data, &rec) == nil {
			reencodeCheck(t, &rec, func() any { return &JobRecord{} })
		}

		// Drive the chunked-stream reader over the same bytes; it must fail
		// cleanly or terminate, never panic or loop.
		rr := NewRequestReader(bytes.NewReader(data))
		if skel, err := rr.Begin(); err == nil && skel != nil && rr.Chunked() {
			for {
				_, done, err := rr.ReadChunk()
				if err != nil || done {
					break
				}
			}
		}
	})
}

// reencodeCheck asserts the codec is a fixed point on accepted values:
// encode(decode(data)) re-decodes and re-encodes to identical bytes. Bytes,
// not reflect.DeepEqual — float fields may carry NaN payloads, which are
// preserved bit-exactly but never compare equal as values.
func reencodeCheck(t *testing.T, v any, fresh func() any) {
	t.Helper()
	b, err := CodecBinary.Encode(v)
	if err != nil {
		t.Fatalf("re-encode of accepted %T failed: %v", v, err)
	}
	out := fresh()
	if err := CodecBinary.Decode(b, out); err != nil {
		t.Fatalf("re-decode of %T failed: %v", v, err)
	}
	b2, err := CodecBinary.Encode(out)
	if err != nil {
		t.Fatalf("second re-encode of %T failed: %v", v, err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("%T not byte-stable under re-encode", v)
	}
}
