package distcolor

// Shape tests: the paper's Table 1 is fundamentally a claim about round
// *exponents*. These tests fit log-log slopes on measured rounds across a
// Δ sweep and assert the orderings the paper predicts. Absolute exponents
// differ from the paper's by roughly 2× (the substituted black box is
// linear rather than √ in its argument; EXPERIMENTS.md), but ours must stay
// polynomially below the previous best's.

import (
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/star"
)

func TestTable1RoundExponents(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-Δ sweep")
	}
	deltas := []int{16, 32, 64, 128}
	var xs, oursR, prevR []float64
	for _, d := range deltas {
		g, err := bench.Workload(d, 2017)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := star.ChooseT(g.MaxDegree(), 1)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := star.EdgeColor(context.Background(), g, tt, 1, star.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev, err := baseline.BE11EdgeColor(context.Background(), g, 1, star.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The robust form of "who wins": pointwise dominance at every Δ of
		// the sweep (the slope gap is only ~Δ^{1/12} under the substituted
		// black box and drowns in per-level constants at laptop Δ).
		if ours.Stats.Rounds >= prev.Stats.Rounds {
			t.Fatalf("Δ=%d: ours %d rounds not below previous best's %d", d, ours.Stats.Rounds, prev.Stats.Rounds)
		}
		xs = append(xs, float64(g.MaxDegree()))
		oursR = append(oursR, float64(ours.Stats.Rounds))
		prevR = append(prevR, float64(prev.Stats.Rounds))
	}
	oursSlope := bench.FitSlope(xs, oursR)
	prevSlope := bench.FitSlope(xs, prevR)
	t.Logf("round exponents at x=1: ours %.2f, previous %.2f (paper: 1/4 vs 1/3; doubled under the substituted black box: 1/2 vs 2/3)", oursSlope, prevSlope)
	// Both must be genuinely sublinear in Δ; the ordering itself is
	// asserted pointwise above.
	if oursSlope <= 0 || oursSlope > 0.85 {
		t.Fatalf("ours' exponent %.2f outside plausible range", oursSlope)
	}
	if prevSlope > 1.1 {
		t.Fatalf("previous best's exponent %.2f implausibly superlinear", prevSlope)
	}
}

func TestSection5RoundGrowthIsLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-n sweep")
	}
	// Theorem 5.2's rounds are O(a log n) — for fixed a the measured rounds
	// must grow far slower than n: the slope of rounds vs n must be ≪ 1/2.
	var ns, rounds []float64
	for _, hub := range []int{100, 200, 400, 800} {
		row, err := bench.RunSparseRow(context.Background(), 3*hub, 2, hub, 2017)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range row.Rows {
			if m.Algorithm == "thm5.2" {
				ns = append(ns, float64(row.N))
				rounds = append(rounds, float64(m.Rounds))
			}
		}
	}
	slope := bench.FitSlope(ns, rounds)
	t.Logf("thm5.2 rounds-vs-n exponent: %.3f (paper: logarithmic)", slope)
	if slope > 0.4 {
		t.Fatalf("rounds grow like n^%.2f — not logarithmic", slope)
	}
}
